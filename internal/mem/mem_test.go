package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"svtsim/internal/qcheck"
)

func TestReadZeroFill(t *testing.T) {
	m := New(1 << 20)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := m.Read(4096, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory must read as zero")
		}
	}
	if m.PagesResident() != 0 {
		t.Fatal("reads must not materialize pages")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New(1 << 20)
	data := []byte("the turtles project")
	if err := m.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New(1 << 20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := uint64(PageSize - 13) // straddles three pages
	if err := m.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip corrupted data")
	}
	if m.PagesResident() != 4 {
		t.Fatalf("resident pages = %d, want 4", m.PagesResident())
	}
}

func TestOutOfBounds(t *testing.T) {
	m := New(1000)
	if err := m.Write(990, make([]byte, 20)); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if err := m.Read(2000, make([]byte, 1)); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	// Overflow-wrapping access must also fail.
	if err := m.Read(^uint64(0)-4, make([]byte, 16)); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestScalarAccessors(t *testing.T) {
	m := New(1 << 16)
	if err := m.WriteU16(0, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU16(0); v != 0xBEEF {
		t.Fatalf("u16 = %#x", v)
	}
	if err := m.WriteU32(8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU32(8); v != 0xDEADBEEF {
		t.Fatalf("u32 = %#x", v)
	}
	if err := m.WriteU64(16, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU64(16); v != 0x0102030405060708 {
		t.Fatalf("u64 = %#x", v)
	}
	// Little-endian layout check.
	b := make([]byte, 2)
	if err := m.Read(0, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xEF || b[1] != 0xBE {
		t.Fatalf("layout = %x, want little-endian", b)
	}
}

func TestScalarOutOfBounds(t *testing.T) {
	m := New(10)
	if _, err := m.ReadU64(8); err == nil {
		t.Fatal("expected error")
	}
	if err := m.WriteU32(9, 1); err == nil {
		t.Fatal("expected error")
	}
}

// Property: for any sequence of writes, a read returns the last write to
// each byte (against a flat reference model).
func TestMemoryMatchesReference(t *testing.T) {
	const space = 1 << 14
	type op struct {
		Addr uint16
		Data []byte
	}
	prop := func(ops []op) bool {
		m := New(space)
		ref := make([]byte, space)
		for _, o := range ops {
			addr := uint64(o.Addr)
			data := o.Data
			if len(data) > 256 {
				data = data[:256]
			}
			if addr+uint64(len(data)) > space {
				continue
			}
			if err := m.Write(addr, data); err != nil {
				return false
			}
			copy(ref[addr:], data)
		}
		got := make([]byte, space)
		if err := m.Read(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(prop, qcheck.Config(t, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestSparseLargeSpace(t *testing.T) {
	m := New(128 << 30) // the testbed's 128 GB
	if err := m.WriteU64(100<<30, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU64(100 << 30); v != 42 {
		t.Fatal("high-address write lost")
	}
	if m.PagesResident() != 1 {
		t.Fatalf("resident = %d, want 1", m.PagesResident())
	}
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(1 << 20)
	b1, err := a.Alloc(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("overlapping allocations")
	}
	if a.InUse() != 8192 {
		t.Fatalf("in use = %d", a.InUse())
	}
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 4096 {
		t.Fatalf("in use after free = %d", a.InUse())
	}
	// Freed space is reusable.
	b3, err := a.Alloc(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b3 != b1 {
		t.Fatalf("first-fit should reuse freed region: got %#x want %#x", b3, b1)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(1 << 30)
	if _, err := a.Alloc(1, 0); err != nil {
		t.Fatal(err)
	}
	b, err := a.Alloc(4096, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b%(1<<20) != 0 {
		t.Fatalf("misaligned: %#x", b)
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(8192)
	if _, err := a.Alloc(0, 0); err == nil {
		t.Fatal("zero-size alloc must fail")
	}
	if _, err := a.Alloc(4096, 3); err == nil {
		t.Fatal("non-power-of-two align must fail")
	}
	if _, err := a.Alloc(1<<30, 0); err == nil {
		t.Fatal("oversize alloc must fail")
	}
	if err := a.Free(12345); err == nil {
		t.Fatal("freeing unallocated base must fail")
	}
}

func TestAllocatorExhaustionAndGapFill(t *testing.T) {
	a := NewAllocator(3 * 4096)
	b0, _ := a.Alloc(4096, 0)
	b1, _ := a.Alloc(4096, 0)
	b2, _ := a.Alloc(4096, 0)
	if _, err := a.Alloc(4096, 0); err == nil {
		t.Fatal("space should be exhausted")
	}
	_ = b0
	_ = b2
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	nb, err := a.Alloc(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nb != b1 {
		t.Fatalf("gap not reused: %#x vs %#x", nb, b1)
	}
}

// Property: allocations never overlap.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		a := NewAllocator(1 << 24)
		type reg struct{ base, size uint64 }
		var regs []reg
		for _, s := range sizes {
			size := uint64(s)%8192 + 1
			b, err := a.Alloc(size, 0)
			if err != nil {
				continue
			}
			regs = append(regs, reg{b, size})
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				x, y := regs[i], regs[j]
				if x.base < y.base+y.size && y.base < x.base+x.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, qcheck.Config(t, 100)); err != nil {
		t.Fatal(err)
	}
}
