package qcheck

import "testing"

func TestSeedDefault(t *testing.T) {
	if s := Seed(t); s != DefaultSeed {
		t.Fatalf("Seed = %d, want %d", s, DefaultSeed)
	}
}

func TestSeedEnvOverride(t *testing.T) {
	t.Setenv("QUICK_SEED", "12345")
	if s := Seed(t); s != 12345 {
		t.Fatalf("Seed = %d, want 12345", s)
	}
}

func TestConfigDeterministic(t *testing.T) {
	a, b := Config(t, 10), Config(t, 10)
	if a.MaxCount != 10 {
		t.Fatalf("MaxCount = %d", a.MaxCount)
	}
	for i := 0; i < 16; i++ {
		if x, y := a.Rand.Uint64(), b.Rand.Uint64(); x != y {
			t.Fatalf("draw %d: %d vs %d — same seed must give same stream", i, x, y)
		}
	}
}
