// Package qcheck centralizes testing/quick configuration so property
// tests are reproducible. testing/quick's default RNG is time-seeded,
// which makes a failing property unrerunnable; every package using quick
// builds its config here instead, from a fixed, logged seed that can be
// overridden with the QUICK_SEED environment variable when hunting a
// reported failure.
package qcheck

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
)

// DefaultSeed seeds quick's RNG unless QUICK_SEED overrides it.
const DefaultSeed = 1

// Seed resolves the property-test seed and logs it, so the value to
// reproduce a failure is always in the test output.
func Seed(t testing.TB) int64 {
	seed := int64(DefaultSeed)
	if env := os.Getenv("QUICK_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("qcheck: bad QUICK_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("qcheck: seed %d (override with QUICK_SEED)", seed)
	return seed
}

// Config returns a quick.Config with the given MaxCount and a
// deterministically seeded RNG.
func Config(t testing.TB, maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(Seed(t)))}
}
