// Package stats implements the measurement methodology used throughout the
// paper's evaluation: sample summaries (mean, standard deviation,
// percentiles), outlier rejection at a sigma multiple, and the
// "repeat until the standard deviation is below a fraction of the mean"
// confidence loop (§6: std-dev and timing overheads below 1% of the mean
// with 2σ confidence after removing outliers with 4σ confidence).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoSamples is returned by operations that need at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest sample; it panics on an empty slice.
func Min(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

// Max returns the largest sample; it panics on an empty slice.
func Max(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RejectOutliers removes samples farther than sigma standard deviations
// from the mean, as in the paper's 4σ outlier filter. The original slice
// is not modified. If all samples would be rejected (pathological sigma),
// the input is returned unchanged.
func RejectOutliers(xs []float64, sigma float64) []float64 {
	if len(xs) < 3 {
		return append([]float64(nil), xs...)
	}
	m, sd := Mean(xs), Stddev(xs)
	if sd == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-m) <= sigma*sd {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), xs...)
	}
	return out
}

// Summary condenses a sample set.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary over xs. It returns ErrNoSamples for an
// empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoSamples
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		Stddev: Stddev(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    percentileSorted(s, 50),
		P95:    percentileSorted(s, 95),
		P99:    percentileSorted(s, 99),
	}, nil
}

// RelStddev returns stddev/mean, or 0 when the mean is 0.
func RelStddev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / math.Abs(m)
}

// ConfidenceOpts parameterizes MeasureUntilStable.
type ConfidenceOpts struct {
	RelTol       float64 // target stddev/mean after outlier removal (paper: 0.01)
	OutlierSigma float64 // outlier rejection threshold (paper: 4)
	MinSamples   int     // never conclude on fewer samples
	MaxSamples   int     // hard cap to bound runtime
	Batch        int     // samples collected between convergence checks
}

// DefaultConfidence mirrors the paper's methodology.
func DefaultConfidence() ConfidenceOpts {
	return ConfidenceOpts{RelTol: 0.01, OutlierSigma: 4, MinSamples: 16, MaxSamples: 4096, Batch: 8}
}

// MeasureUntilStable repeatedly calls sample() until the 4σ-filtered
// sample set has a relative standard deviation below RelTol, then returns
// the filtered samples. It always returns at least MinSamples samples and
// gives up (returning what it has) at MaxSamples.
func MeasureUntilStable(sample func() float64, o ConfidenceOpts) []float64 {
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 16
	}
	if o.MaxSamples < o.MinSamples {
		o.MaxSamples = o.MinSamples
	}
	var xs []float64
	for len(xs) < o.MinSamples {
		xs = append(xs, sample())
	}
	for {
		kept := RejectOutliers(xs, o.OutlierSigma)
		if RelStddev(kept) <= o.RelTol || len(xs) >= o.MaxSamples {
			return kept
		}
		for i := 0; i < o.Batch && len(xs) < o.MaxSamples; i++ {
			xs = append(xs, sample())
		}
	}
}
