package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"svtsim/internal/qcheck"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("stddev of one sample should be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {90, 46},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRejectOutliers(t *testing.T) {
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 1000}
	kept := RejectOutliers(xs, 2)
	if len(kept) != 9 {
		t.Fatalf("kept %d, want 9", len(kept))
	}
	for _, x := range kept {
		if x != 10 {
			t.Fatalf("outlier survived: %v", x)
		}
	}
}

func TestRejectOutliersUniformKept(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	kept := RejectOutliers(xs, 4)
	if len(kept) != 4 {
		t.Fatalf("uniform data lost samples: %d", len(kept))
	}
}

func TestRejectOutliersSmallInput(t *testing.T) {
	xs := []float64{1, 100}
	kept := RejectOutliers(xs, 0.1)
	if len(kept) != 2 {
		t.Fatal("inputs with <3 samples must be kept whole")
	}
}

func TestRejectOutliersIdempotentOnClean(t *testing.T) {
	xs := []float64{9.9, 10, 10.1, 10, 9.95, 10.05, 10, 10}
	once := RejectOutliers(xs, 4)
	twice := RejectOutliers(once, 4)
	if len(once) != len(twice) {
		t.Fatalf("second pass removed more: %d -> %d", len(once), len(twice))
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Fatal("expected ErrNoSamples")
	}
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almost(s.Mean, 2.5) || !almost(s.P50, 2.5) {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRelStddev(t *testing.T) {
	if RelStddev([]float64{0, 0, 0}) != 0 {
		t.Fatal("zero-mean relstddev should be 0")
	}
	got := RelStddev([]float64{99, 100, 101})
	if !almost(got, 1.0/100) {
		t.Fatalf("relstddev = %v", got)
	}
}

func TestMeasureUntilStableConverges(t *testing.T) {
	i := 0
	// A sequence with two gross outliers, then near-constant: the 4σ filter
	// must discard the outliers and the loop must converge.
	sample := func() float64 {
		i++
		if i <= 2 {
			return 1e6
		}
		return 50 + float64(i%2) // 50 or 51: rel stddev ~1%
	}
	xs := MeasureUntilStable(sample, ConfidenceOpts{RelTol: 0.01, OutlierSigma: 4, MinSamples: 8, MaxSamples: 512, Batch: 8})
	if len(xs) < 8 {
		t.Fatalf("returned %d samples, want >= MinSamples", len(xs))
	}
	if RelStddev(xs) > 0.011 && len(xs) < 512 {
		t.Fatalf("did not converge: rel=%v n=%d", RelStddev(xs), len(xs))
	}
}

func TestMeasureUntilStableHitsCap(t *testing.T) {
	i := 0
	sample := func() float64 { i++; return float64(i % 7) } // never stable
	xs := MeasureUntilStable(sample, ConfidenceOpts{RelTol: 0.0001, OutlierSigma: 4, MinSamples: 8, MaxSamples: 64, Batch: 8})
	if i > 64 {
		t.Fatalf("took %d raw samples, cap is 64", i)
	}
	if len(xs) == 0 {
		t.Fatal("must return samples even at cap")
	}
}

func TestMeasureUntilStableDefaults(t *testing.T) {
	n := 0
	xs := MeasureUntilStable(func() float64 { n++; return 42 }, ConfidenceOpts{})
	if len(xs) < 16 {
		t.Fatalf("defaults must enforce a sane MinSamples, got %d", len(xs))
	}
}

// Property: percentile output is monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, qcheck.Config(t, 300)); err != nil {
		t.Fatal(err)
	}
}

// Property: outlier rejection never increases the sample count and keeps a
// subset of the original values.
func TestRejectOutliersSubsetProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		kept := RejectOutliers(xs, 4)
		if len(kept) > len(xs) {
			return false
		}
		// multiset subset check
		remaining := append([]float64(nil), xs...)
		sort.Float64s(remaining)
		sort.Float64s(kept)
		j := 0
		for _, k := range kept {
			for j < len(remaining) && remaining[j] < k {
				j++
			}
			if j >= len(remaining) || remaining[j] != k {
				return false
			}
			j++
		}
		return true
	}
	if err := quick.Check(prop, qcheck.Config(t, 300)); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []float64{1, 5, 12, 15, 99} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if !almost(h.Mean(), (1+5+12+15+99)/5.0) {
		t.Fatalf("mean = %v", h.Mean())
	}
	if got := h.Percentile(100); got != 99 {
		t.Fatalf("p100 = %v", got)
	}
	if h.String() == "(empty histogram)" {
		t.Fatal("non-empty histogram rendered as empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.String() != "(empty histogram)" {
		t.Fatal("empty histogram should say so")
	}
	if h.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestHistogramBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	NewHistogram(0)
}

func TestHistogramSamplesCopy(t *testing.T) {
	h := NewHistogram(1)
	h.Add(3)
	s := h.Samples()
	s[0] = 99
	if h.Percentile(50) != 3 {
		t.Fatal("Samples must return a copy")
	}
}
