package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram accumulates values into fixed-width buckets; it is used for
// latency distributions (Figure 8) and for quick textual inspection of
// simulation output.
type Histogram struct {
	Width   float64 // bucket width; values land in bucket floor(v/Width)
	counts  map[int]int
	total   int
	sum     float64
	samples []float64 // retained for exact percentiles
}

// NewHistogram returns a histogram with the given bucket width (> 0).
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return &Histogram{Width: width, counts: make(map[int]int)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.counts[int(v/h.Width)]++
	h.total++
	h.sum += v
	h.samples = append(h.samples, v)
}

// N reports the number of recorded values.
func (h *Histogram) N() int { return h.total }

// Mean reports the mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile reports an exact percentile over the recorded values.
func (h *Histogram) Percentile(p float64) float64 { return Percentile(h.samples, p) }

// Samples returns a copy of all recorded values.
func (h *Histogram) Samples() []float64 { return append([]float64(nil), h.samples...) }

// String renders an ASCII sketch of the distribution, at most 20 rows.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty histogram)"
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if len(keys) > 20 {
		keys = keys[:20]
	}
	maxCount := 0
	for _, k := range keys {
		if h.counts[k] > maxCount {
			maxCount = h.counts[k]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		c := h.counts[k]
		bar := strings.Repeat("#", 1+c*40/maxCount)
		fmt.Fprintf(&b, "%12.2f %6d %s\n", float64(k)*h.Width, c, bar)
	}
	return b.String()
}
