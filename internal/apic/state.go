package apic

import "svtsim/internal/sim"

// State is the canonical serializable form of a LAPIC: the pending
// vector set (IRR) in ascending order and the armed TSC deadline
// (0 = disarmed). Delivery tallies are diagnostics, not architectural
// state, and are excluded.
type State struct {
	Pending  []int
	Deadline sim.Time
}

// SaveState captures the LAPIC's architectural state.
func (l *LAPIC) SaveState() State {
	s := State{Deadline: l.deadline}
	for v := 0; v < 256; v++ {
		if l.pending[v] {
			s.Pending = append(s.Pending, v)
		}
	}
	return s
}

// LoadState replaces the pending set and re-arms (or disarms) the
// deadline timer. Re-arming goes through SetTSCDeadline so the one-shot
// event is rescheduled on the engine; a deadline already in the past is
// clamped to now by the engine and fires on the next dispatch.
func (l *LAPIC) LoadState(s State) {
	l.pending = [256]bool{}
	l.npending = 0
	for _, v := range s.Pending {
		if v >= 0 && v < 256 && !l.pending[v] {
			l.pending[v] = true
			l.npending++
		}
	}
	l.SetTSCDeadline(s.Deadline)
}
