package apic

import (
	"fmt"

	"svtsim/internal/sim"
)

// State is the canonical serializable form of a LAPIC: the pending
// vector set (IRR) in ascending order and the armed TSC deadline
// (0 = disarmed). Delivery tallies are diagnostics, not architectural
// state, and are excluded.
type State struct {
	Pending  []int
	Deadline sim.Time
}

// SaveState captures the LAPIC's architectural state.
func (l *LAPIC) SaveState() State {
	s := State{Deadline: l.deadline}
	for v := 0; v < 256; v++ {
		if l.pending[v] {
			s.Pending = append(s.Pending, v)
		}
	}
	return s
}

// LoadState replaces the pending set and re-arms (or disarms) the
// deadline timer. Re-arming goes through SetTSCDeadline so the one-shot
// event is rescheduled on the engine; a deadline already in the past is
// clamped to now by the engine and fires on the next dispatch.
func (l *LAPIC) LoadState(s State) {
	l.pending = [256]bool{}
	l.npending = 0
	for _, v := range s.Pending {
		if v >= 0 && v < 256 && !l.pending[v] {
			l.pending[v] = true
			l.npending++
		}
	}
	l.SetTSCDeadline(s.Deadline)
}

// SaveWords is the port-level snapshot codec (ports.IRQController): the
// pending-count word, the pending vectors ascending, and the deadline.
// This encoding is frozen — snapshot section digests depend on it.
func (l *LAPIC) SaveWords() []uint64 {
	st := l.SaveState()
	out := make([]uint64, 0, 2+len(st.Pending))
	out = append(out, uint64(len(st.Pending)))
	for _, v := range st.Pending {
		out = append(out, uint64(v))
	}
	return append(out, uint64(st.Deadline))
}

// LoadWords restores state captured by SaveWords.
func (l *LAPIC) LoadWords(ws []uint64) error {
	if len(ws) < 2 {
		return fmt.Errorf("apic: state needs at least 2 words, got %d", len(ws))
	}
	n := ws[0]
	if n != uint64(len(ws)-2) {
		return fmt.Errorf("apic: state claims %d pending vectors with %d words", n, len(ws))
	}
	var st State
	for _, w := range ws[1 : 1+n] {
		if w > 255 {
			return fmt.Errorf("apic: pending vector %d out of range", w)
		}
		st.Pending = append(st.Pending, int(w))
	}
	st.Deadline = sim.Time(ws[len(ws)-1])
	l.LoadState(st)
	return nil
}
