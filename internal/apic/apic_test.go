package apic

import (
	"testing"

	"svtsim/internal/sim"
)

func TestDeliverAck(t *testing.T) {
	l := New(0, sim.New())
	if l.HasPending() {
		t.Fatal("fresh LAPIC must be idle")
	}
	l.Deliver(VecVirtioNet)
	v, ok := l.PendingVector()
	if !ok || v != VecVirtioNet {
		t.Fatalf("pending = %d,%v", v, ok)
	}
	if !l.Ack(VecVirtioNet) {
		t.Fatal("ack must succeed")
	}
	if l.HasPending() {
		t.Fatal("nothing should remain pending")
	}
	if l.Ack(VecVirtioNet) {
		t.Fatal("double ack must fail")
	}
}

func TestPriorityOrder(t *testing.T) {
	l := New(0, sim.New())
	l.Deliver(VecVirtioNet) // 0x24
	l.Deliver(VecTimer)     // 0xEC — higher
	v, _ := l.PendingVector()
	if v != VecTimer {
		t.Fatalf("highest vector must win, got %#x", v)
	}
	l.Ack(VecTimer)
	v, _ = l.PendingVector()
	if v != VecVirtioNet {
		t.Fatalf("next = %#x", v)
	}
}

func TestEdgeCollapse(t *testing.T) {
	l := New(0, sim.New())
	l.Deliver(VecTimer)
	l.Deliver(VecTimer)
	if l.Delivered() != 2 {
		t.Fatalf("delivered = %d", l.Delivered())
	}
	l.Ack(VecTimer)
	if l.HasPending() {
		t.Fatal("duplicate delivery must collapse into one pending bit")
	}
}

func TestOutOfRangeVectorIgnored(t *testing.T) {
	l := New(0, sim.New())
	l.Deliver(-1)
	l.Deliver(300)
	if l.HasPending() {
		t.Fatal("out-of-range vectors must be dropped")
	}
	if l.Ack(-1) || l.Ack(300) {
		t.Fatal("out-of-range ack must fail")
	}
}

func TestOnDeliverHook(t *testing.T) {
	l := New(0, sim.New())
	var got []int
	l.SetOnDeliver(func(vec int) { got = append(got, vec) })
	l.Deliver(5)
	l.Deliver(5)
	if len(got) != 2 || got[0] != 5 {
		t.Fatalf("hook calls = %v", got)
	}
}

func TestTSCDeadline(t *testing.T) {
	eng := sim.New()
	l := New(0, eng)
	l.SetTSCDeadline(1000)
	if !l.TimerArmed() {
		t.Fatal("timer should be armed")
	}
	eng.RunUntil(999)
	if l.HasPending() {
		t.Fatal("timer fired early")
	}
	eng.RunUntil(1000)
	v, ok := l.PendingVector()
	if !ok || v != VecTimer {
		t.Fatalf("timer vector = %#x,%v", v, ok)
	}
	if l.TimerFired() != 1 {
		t.Fatalf("fired = %d", l.TimerFired())
	}
	if l.TimerArmed() {
		t.Fatal("one-shot timer must disarm after firing")
	}
}

func TestTSCDeadlineRearmReplaces(t *testing.T) {
	eng := sim.New()
	l := New(0, eng)
	l.SetTSCDeadline(1000)
	l.SetTSCDeadline(2000) // replaces
	eng.RunUntil(1500)
	if l.HasPending() {
		t.Fatal("replaced deadline must not fire")
	}
	eng.RunUntil(2000)
	if !l.HasPending() {
		t.Fatal("new deadline must fire")
	}
	if l.TimerFired() != 1 {
		t.Fatalf("fired = %d, want 1", l.TimerFired())
	}
}

func TestTSCDeadlineDisarm(t *testing.T) {
	eng := sim.New()
	l := New(0, eng)
	l.SetTSCDeadline(1000)
	l.SetTSCDeadline(0) // disarm
	if l.TimerArmed() {
		t.Fatal("zero deadline must disarm")
	}
	eng.RunUntil(2000)
	if l.HasPending() {
		t.Fatal("disarmed timer fired")
	}
}

func TestPastDeadlineFiresImmediately(t *testing.T) {
	eng := sim.New()
	l := New(0, eng)
	eng.Advance(5000)
	l.SetTSCDeadline(1000) // already past: clamps to now
	eng.DispatchDue()
	if !l.HasPending() {
		t.Fatal("past deadline must fire at once")
	}
}
