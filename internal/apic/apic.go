// Package apic models the interrupt machinery the experiments depend on:
// a local APIC per hardware context (pending-vector state, TSC-deadline
// one-shot timer) and vector delivery from device models. Timer accuracy
// under virtualization is what the paper's video-playback experiment
// (Figure 10) measures, and TSC-deadline reprogramming (MSR_WRITE exits)
// is one of the two dominant exit reasons in its profiles.
package apic

import (
	"fmt"

	"svtsim/internal/fault"
	"svtsim/internal/obs"
	"svtsim/internal/sim"
)

// Vector numbers used by the simulated machine.
const (
	VecTimer     = 0xEC // TSC-deadline timer
	VecVirtioNet = 0x24
	VecVirtioBlk = 0x25
	VecIPI       = 0xFB
	VecSpurious  = 0xFF
)

// LAPIC is one local APIC. It tracks pending vectors (the IRR) and owns a
// TSC-deadline timer. The zero value is unusable; construct with New.
type LAPIC struct {
	ID  int
	eng *sim.Engine

	pending  [256]bool
	npending int

	deadlineEv sim.EventRef
	// deadline mirrors the armed IA32_TSC_DEADLINE value (0 = disarmed)
	// so snapshot capture can serialize the timer and restore re-arm it.
	deadline   sim.Time
	timerFired obs.Counter
	delivered  obs.Counter
	dropped    obs.Counter
	delayed    obs.Counter
	// onDeliver, when set, is invoked after a vector becomes pending; the
	// machine uses it to wake halted vCPUs. Install with SetOnDeliver.
	onDeliver func(vec int)

	// obsT, when non-nil, receives a delivery instant per vector on the
	// track this LAPIC belongs to.
	obsT     *obs.Tracer
	obsTrack int
	obsLabel obs.Label
}

// SetObs attaches the observability tracer (nil detaches): deliveries
// become instants on track, labelled with the LAPIC's display name.
func (l *LAPIC) SetObs(t *obs.Tracer, track int, name string) {
	l.obsT = t
	l.obsTrack = track
	l.obsLabel = t.Intern(name)
}

// Metrics registers this LAPIC's tallies under prefix (e.g.
// "apic.ctx0") in the registry.
func (l *LAPIC) Metrics(r *obs.Registry, prefix string) {
	r.RegisterCounter(prefix+".timer_fired", &l.timerFired)
	r.RegisterCounter(prefix+".delivered", &l.delivered)
	r.RegisterCounter(prefix+".dropped", &l.dropped)
	r.RegisterCounter(prefix+".delayed", &l.delayed)
}

// New returns a LAPIC bound to the engine.
func New(id int, eng *sim.Engine) *LAPIC {
	return &LAPIC{ID: id, eng: eng}
}

// SetOnDeliver installs the post-delivery callback (ports.IRQController).
func (l *LAPIC) SetOnDeliver(fn func(vec int)) { l.onDeliver = fn }

// SetDeadline arms the deadline timer (ports.IRQController); on x86 the
// deadline register is IA32_TSC_DEADLINE.
func (l *LAPIC) SetDeadline(t sim.Time) { l.SetTSCDeadline(t) }

// Deliver marks vector vec pending. Delivering an already-pending vector
// is idempotent (edge-collapsing, as on real hardware IRR bits). Delivery
// passes through the fault plane: an injected drop loses the vector and a
// delay re-delivers it later, modelling interconnect misbehaviour between
// a device (or sending core) and this LAPIC.
func (l *LAPIC) Deliver(vec int) {
	if vec < 0 || vec > 255 {
		return
	}
	if l.eng != nil {
		site := fault.SiteIRQ
		if vec == VecIPI {
			site = fault.SiteIPI
		}
		out := l.eng.Inject(site)
		if out.Drop {
			l.dropped.Inc()
			return
		}
		if out.Delay > 0 {
			l.delayed.Inc()
			l.eng.After(out.Delay, func() { l.deliverNow(vec) })
			return
		}
	}
	l.deliverNow(vec)
}

// DeliverDirect marks vec pending, bypassing the fault plane. It is for
// VM-entry event injection: the vector already crossed the interconnect
// (paying any fault consult on that hop) and now lives in the VMCS
// entry-interruption field — internal CPU state that cannot be lost or
// delayed in transit again.
func (l *LAPIC) DeliverDirect(vec int) {
	if vec < 0 || vec > 255 {
		return
	}
	l.deliverNow(vec)
}

func (l *LAPIC) deliverNow(vec int) {
	if l.eng != nil {
		// Idle loops watch the wake epoch: a delivery fired from event
		// context may satisfy a waiter whose condition lives on another
		// LAPIC (nested HLT chains wait at L0 for wakes owned by L1).
		l.eng.NoteWake()
	}
	if !l.pending[vec] {
		l.pending[vec] = true
		l.npending++
	}
	l.delivered.Inc()
	if l.obsT != nil && l.eng != nil {
		kind := obs.KindIRQ
		if vec == VecIPI {
			kind = obs.KindIPI
		}
		l.obsT.Instant(l.obsTrack, kind, obs.LevelNone, l.obsLabel,
			l.eng.Now(), uint64(vec), uint64(l.npending))
	}
	if l.onDeliver != nil {
		l.onDeliver(vec)
	}
}

// PendingVector returns the highest-priority pending vector, x86-style
// (higher vector number wins), without acknowledging it.
func (l *LAPIC) PendingVector() (int, bool) {
	if l.npending == 0 {
		return 0, false
	}
	for v := 255; v >= 0; v-- {
		if l.pending[v] {
			return v, true
		}
	}
	return 0, false
}

// HasPending reports whether any vector is pending.
func (l *LAPIC) HasPending() bool { return l.npending > 0 }

// Ack consumes a pending vector (the interrupt-acknowledge cycle).
// It reports whether the vector was pending.
func (l *LAPIC) Ack(vec int) bool {
	if vec < 0 || vec > 255 || !l.pending[vec] {
		return false
	}
	l.pending[vec] = false
	l.npending--
	return true
}

// SetTSCDeadline arms the one-shot deadline timer for absolute virtual
// time t; the timer delivers VecTimer at t. A zero deadline disarms the
// timer, and re-arming replaces the previous deadline — both as the
// architecture specifies for IA32_TSC_DEADLINE.
func (l *LAPIC) SetTSCDeadline(t sim.Time) {
	l.eng.Cancel(l.deadlineEv)
	l.deadlineEv = sim.EventRef{}
	l.deadline = t
	if t == 0 {
		return
	}
	l.deadlineEv = l.eng.At(t, func() {
		l.deadlineEv = sim.EventRef{}
		l.deadline = 0
		l.timerFired.Inc()
		l.Deliver(VecTimer)
	})
}

// TimerArmed reports whether a deadline is pending.
func (l *LAPIC) TimerArmed() bool { return l.deadlineEv.Pending() }

// TimerFired reports how many deadline interrupts have fired.
func (l *LAPIC) TimerFired() uint64 { return l.timerFired.Value() }

// Delivered reports the total vectors delivered (including collapsed ones).
func (l *LAPIC) Delivered() uint64 { return l.delivered.Value() }

// Dropped reports vectors lost to injected faults.
func (l *LAPIC) Dropped() uint64 { return l.dropped.Value() }

// Delayed reports vectors deferred by injected faults.
func (l *LAPIC) Delayed() uint64 { return l.delayed.Value() }

// ProbeState dumps the IRR for stall/deadlock reports.
func (l *LAPIC) ProbeState() string {
	vec, ok := l.PendingVector()
	top := "none"
	if ok {
		top = fmt.Sprintf("%#02x", vec)
	}
	return fmt.Sprintf("pending=%d top=%s timer=%v delivered=%d dropped=%d delayed=%d",
		l.npending, top, l.TimerArmed(), l.Delivered(), l.Dropped(), l.Delayed())
}
