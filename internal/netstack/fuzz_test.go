package netstack

import (
	"bytes"
	"testing"

	"svtsim/internal/sim"
)

// FuzzSegmentReorder throws arbitrary delivery orders — duplicates,
// gaps, stale retransmits, raw garbage — at a receiving stack and
// checks the in-order contract: whatever arrives, the application sees
// a clean prefix of the original byte stream, rcvNxt never runs ahead
// of the bytes actually delivered, and nothing panics.
func FuzzSegmentReorder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})             // in order
	f.Add([]byte{5, 4, 3, 2, 1, 0})             // reversed
	f.Add([]byte{1, 1, 1, 0, 0, 2, 5, 3, 4})    // heavy duplication
	f.Add([]byte{3, 3, 0xFF, 0x80, 2, 0, 1})    // gaps + wild indexes
	f.Add([]byte("not even close to segments")) // shape abuse
	f.Fuzz(func(t *testing.T, order []byte) {
		eng := sim.New()
		ca, _ := NewPipe(eng, 0)
		st := New(eng, ca, Params{MSS: 16, Window: 1 << 16})
		st.FaultSite = "" // the fuzzer is the chaos source here
		var got []byte
		st.OnFlow = func(fl *Flow) {
			fl.OnData = func(p []byte) { got = append(got, p...) }
		}

		// A reference stream, pre-cut into MSS-sized segments.
		msg := make([]byte, 96)
		for i := range msg {
			msg[i] = byte(i*13 + 7)
		}
		const chunk = 16
		var segs [][]byte
		for off := 0; off < len(msg); off += chunk {
			segs = append(segs, Segment{
				Flags: flagDATA, FlowID: 9, Seq: uint32(off),
				Payload: msg[off : off+chunk],
			}.Encode())
		}

		st.Deliver(Segment{Flags: flagSYN, FlowID: 9}.Encode())
		eng.Drain(1000)
		// Deliver in fuzz-chosen order (indexes past the segment count
		// become raw-garbage injections of the order bytes themselves).
		for i, b := range order {
			if int(b) < len(segs) {
				st.Deliver(segs[b])
			} else if !IsSegment(order[i:]) {
				// Raw garbage only: a fuzz input that happens to spell a
				// valid segment would be adversarial injection, not a
				// reordering, and is out of scope for this invariant.
				st.Deliver(order[i:])
			}
			eng.Drain(1000)
			if !bytes.HasPrefix(msg, got) {
				t.Fatalf("delivered bytes are not a prefix of the stream: %d delivered", len(got))
			}
		}
		// Close the gaps: after an in-order sweep the full stream must
		// be out, exactly once.
		for _, s := range segs {
			st.Deliver(s)
			eng.Drain(1000)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("stream incomplete after in-order sweep: %d/%d bytes", len(got), len(msg))
		}
		fl := st.Flow(9)
		if fl.RecvSeq() != uint32(len(msg)) {
			t.Fatalf("rcvNxt=%d, want %d", fl.RecvSeq(), len(msg))
		}
		if fl.oooBytes != 0 || len(fl.ooo) != 0 {
			t.Fatalf("reorder buffer leaked: %d bytes in %d segments", fl.oooBytes, len(fl.ooo))
		}
	})
}
