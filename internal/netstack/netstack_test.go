package netstack

import (
	"bytes"
	"testing"

	"svtsim/internal/fault"
	"svtsim/internal/sim"
)

func TestSegmentEncodeDecode(t *testing.T) {
	in := Segment{
		Flags: flagDATA | flagACK, FlowID: 7, Seq: 4096, Ack: 512, Wnd: 8192,
		Payload: []byte("hello, netstack"),
	}
	raw := in.Encode()
	if !IsSegment(raw) {
		t.Fatal("encoded segment does not carry the magic")
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Flags != in.Flags || out.FlowID != in.FlowID || out.Seq != in.Seq ||
		out.Ack != in.Ack || out.Wnd != in.Wnd || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	if _, err := Decode(raw[:HeaderSize-1]); err == nil {
		t.Fatal("truncated header must not decode")
	}
	raw[21] = 0xFF // header claims more payload than present
	if _, err := Decode(raw); err == nil {
		t.Fatal("truncated payload must not decode")
	}
}

// pair builds two stacks over a pipe and completes the handshake.
func pair(t *testing.T, eng *sim.Engine, lat sim.Time, p Params) (*Stack, *Stack, *Flow) {
	t.Helper()
	ca, cb := NewPipe(eng, lat)
	a := New(eng, ca, p)
	b := New(eng, cb, p)
	fa := a.Open(1)
	eng.Drain(100)
	if !fa.Established() || b.Flow(1) == nil || !b.Flow(1).Established() {
		t.Fatal("handshake did not complete")
	}
	return a, b, fa
}

// TestSegmentOrdering covers in-order delivery over paths that reorder
// segments in flight: whatever arrival order the conduit produces, the
// application sees the byte stream in sequence.
func TestSegmentOrdering(t *testing.T) {
	msg := make([]byte, 3000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	cases := []struct {
		name string
		// delay prices packet i on the sender's conduit end.
		delay func(i uint64) sim.Time
	}{
		{"in-order path", func(i uint64) sim.Time { return sim.Microsecond }},
		{"first data segment straggles", func(i uint64) sim.Time {
			if i == 1 { // 0 is the SYN
				return 50 * sim.Microsecond
			}
			return sim.Microsecond
		}},
		{"fully reversed", func(i uint64) sim.Time {
			return sim.Time(100-i*10) * sim.Microsecond
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.New()
			_, b, fa := pair(t, eng, sim.Microsecond, Params{MSS: 1024})
			var got []byte
			b.Flow(1).OnData = func(p []byte) { got = append(got, p...) }
			fa.S.c.(*PipeEnd).Delay = func(i uint64, pkt []byte) sim.Time { return tc.delay(i) }
			fa.Write(msg)
			eng.Drain(10000)
			if !bytes.Equal(got, msg) {
				t.Fatalf("stream corrupted: got %d bytes, want %d (reordering must be invisible)", len(got), len(msg))
			}
		})
	}
}

func TestReorderedSegmentsAreBuffered(t *testing.T) {
	eng := sim.New()
	a, b, fa := pair(t, eng, sim.Microsecond, Params{MSS: 512})
	var got []byte
	b.Flow(1).OnData = func(p []byte) { got = append(got, p...) }
	// Delay only the first DATA segment so its successors arrive early.
	a.c.(*PipeEnd).Delay = func(i uint64, pkt []byte) sim.Time {
		if i == 1 {
			return 40 * sim.Microsecond
		}
		return sim.Microsecond
	}
	fa.Write(make([]byte, 2048)) // 4 segments
	eng.Drain(10000)
	if len(got) != 2048 {
		t.Fatalf("delivered %d bytes, want 2048", len(got))
	}
	if b.OutOfOrder == 0 {
		t.Fatal("path reordered segments but the receiver buffered none out of order")
	}
	if a.Retransmits != 0 {
		t.Fatalf("reordering alone must not trigger retransmits, got %d", a.Retransmits)
	}
}

// TestRetransmitAfterDrop drops exactly one DATA segment on the wire via
// the fault plane; the sender's RTO must recover it and the stream must
// arrive intact.
func TestRetransmitAfterDrop(t *testing.T) {
	eng := sim.New()
	pl := fault.NewPlane(eng, 42)
	// Consults at the net/segment site: 1=SYN, 2=SYN|ACK, 3=first DATA.
	pl.Add(fault.SiteConfig{Site: fault.SiteNetSegment, Every: 1, After: 2, Limit: 1, Drop: true})
	_, b, fa := pair(t, eng, sim.Microsecond, Params{MSS: 512, RTO: 200 * sim.Microsecond})
	var got []byte
	b.Flow(1).OnData = func(p []byte) { got = append(got, p...) }
	msg := make([]byte, 1024)
	for i := range msg {
		msg[i] = byte(i)
	}
	fa.Write(msg)
	eng.Drain(10000)
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted after drop: %d bytes, want %d", len(got), len(msg))
	}
	if fa.S.Dropped != 1 {
		t.Fatalf("fault plane dropped %d segments, want 1", fa.S.Dropped)
	}
	if fa.S.Retransmits == 0 {
		t.Fatal("drop recovered without a retransmit?")
	}
	// The drop is also visible at the receiver as out-of-order arrival
	// (segment 2 landed before the retransmitted segment 1).
	if b.OutOfOrder == 0 {
		t.Fatal("expected successor segments buffered past the gap")
	}
}

func TestRetransmitRecoversDroppedSYN(t *testing.T) {
	eng := sim.New()
	pl := fault.NewPlane(eng, 1)
	pl.Add(fault.SiteConfig{Site: fault.SiteNetSegment, Every: 1, Limit: 1, Drop: true})
	_, b, fa := pair(t, eng, sim.Microsecond, Params{RTO: 100 * sim.Microsecond})
	var got []byte
	b.Flow(1).OnData = func(p []byte) { got = append(got, p...) }
	fa.Write([]byte("after syn loss"))
	eng.Drain(10000)
	if string(got) != "after syn loss" {
		t.Fatalf("got %q", got)
	}
	if fa.S.Retransmits == 0 {
		t.Fatal("SYN drop must be recovered by the handshake timer")
	}
}

// TestWindowStallResume pins flow control: a manual-consume receiver
// with a small window stalls the sender exactly at the window edge, and
// each Consume's window update re-opens it.
func TestWindowStallResume(t *testing.T) {
	eng := sim.New()
	_, b, fa := pair(t, eng, sim.Microsecond, Params{MSS: 100, Window: 200, RTO: sim.Millisecond})
	fb := b.Flow(1)
	fb.Manual = true
	msg := make([]byte, 500)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	fa.Write(msg)
	eng.RunUntil(500 * sim.Microsecond) // well short of the RTO probe
	if n := fb.BytesReadable(); n != 200 {
		t.Fatalf("receiver buffered %d bytes, want the full 200-byte window", n)
	}
	if q := fa.BytesQueued(); q != 300 {
		t.Fatalf("sender queue %d, want 300 stalled behind the closed window", q)
	}
	var got []byte
	got = append(got, fb.Consume(200)...)
	eng.RunUntil(900 * sim.Microsecond)
	if n := fb.BytesReadable(); n != 200 {
		t.Fatalf("after consume, receiver buffered %d, want next 200-byte window", n)
	}
	got = append(got, fb.Consume(200)...)
	eng.RunUntil(999 * sim.Microsecond)
	got = append(got, fb.Consume(200)...)
	if !bytes.Equal(got, msg) {
		t.Fatalf("stall/resume corrupted the stream: %d bytes, want %d", len(got), len(msg))
	}
	if fa.BytesQueued() != 0 {
		t.Fatalf("sender still holds %d bytes", fa.BytesQueued())
	}
	if fa.S.Retransmits != 0 {
		t.Fatalf("window stall must not look like loss: %d retransmits", fa.S.Retransmits)
	}
}

// TestZeroWindowProbeRecoversLostWindowUpdate drops the receiver's
// window-update ACK; the sender's probe must unstick the flow.
func TestZeroWindowProbeRecoversLostWindowUpdate(t *testing.T) {
	eng := sim.New()
	pl := fault.NewPlane(eng, 9)
	_, b, fa := pair(t, eng, sim.Microsecond, Params{MSS: 100, Window: 100, RTO: 100 * sim.Microsecond})
	fb := b.Flow(1)
	fb.Manual = true
	fa.Write(make([]byte, 300))
	eng.RunUntil(50 * sim.Microsecond)
	if fb.BytesReadable() != 100 {
		t.Fatalf("readable %d, want 100", fb.BytesReadable())
	}
	// Drop exactly the next segment: the window-update ACK from Consume.
	pl.Add(fault.SiteConfig{Site: fault.SiteNetSegment, Every: 1, Limit: 1, Drop: true})
	fb.Consume(100)
	eng.Drain(100000)
	total := 100
	for {
		p := fb.Consume(1 << 20)
		if len(p) == 0 {
			break
		}
		total += len(p)
		eng.Drain(100000)
	}
	if total != 300 {
		t.Fatalf("delivered %d bytes, want 300 (probe must recover the lost window update)", total)
	}
	if fa.S.Retransmits == 0 {
		t.Fatal("expected at least one zero-window probe")
	}
}

func TestFlowCloseDeliversFIN(t *testing.T) {
	eng := sim.New()
	_, b, fa := pair(t, eng, sim.Microsecond, Params{})
	closed := false
	b.Flow(1).OnClose = func() { closed = true }
	fa.Write([]byte("bye"))
	fa.Close()
	eng.Drain(1000)
	if !closed || !b.Flow(1).Closed() {
		t.Fatal("FIN not delivered in order")
	}
	fa.Write([]byte("zombie"))
	eng.Drain(1000)
	if b.DataBytes != 3 {
		t.Fatalf("write-after-close leaked data: %d bytes", b.DataBytes)
	}
}

func TestNonSegmentPacketsIgnored(t *testing.T) {
	eng := sim.New()
	ca, _ := NewPipe(eng, 0)
	st := New(eng, ca, Params{})
	st.Deliver([]byte("raw packet, no magic"))
	st.Deliver([]byte{magic0}) // too short for the magic check
	if st.SegsRecv != 0 || st.Malformed != 0 {
		t.Fatal("non-segment packets must be invisible to the stack")
	}
	// Magic present but header lies about the payload length.
	bad := Segment{Flags: flagDATA, FlowID: 1, Payload: []byte("xx")}.Encode()
	st.Deliver(bad[:len(bad)-1])
	if st.Malformed != 1 {
		t.Fatal("truncated segment must count as malformed")
	}
}

// TestStackDeterminism replays the same lossy, reordering transfer twice
// and requires identical counters — the transport is a pure function of
// the seed.
func TestStackDeterminism(t *testing.T) {
	run := func() (Stats, Stats, []byte) {
		eng := sim.New()
		pl := fault.NewPlane(eng, 77)
		pl.Add(fault.SiteConfig{Site: fault.SiteNetSegment, Rate: 0.2, Drop: true})
		a, b, fa := pair(t, eng, 2*sim.Microsecond, Params{MSS: 256, RTO: 150 * sim.Microsecond})
		var got []byte
		b.Flow(1).OnData = func(p []byte) { got = append(got, p...) }
		msg := make([]byte, 4096)
		for i := range msg {
			msg[i] = byte(i ^ (i >> 3))
		}
		fa.Write(msg)
		eng.Drain(1 << 20)
		if !bytes.Equal(got, msg) {
			t.Fatal("lossy transfer did not converge")
		}
		return a.Stats, b.Stats, got
	}
	a1, b1, g1 := run()
	a2, b2, g2 := run()
	if a1 != a2 || b1 != b2 || !bytes.Equal(g1, g2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a1, a2)
	}
}
