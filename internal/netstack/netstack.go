// Package netstack layers a deterministic TCP-ish transport over the
// simulator's packet conduits (virtio-net NICs, netsim links, or the
// fleet host's cross-core delivery fabric). It provides connections
// (flows), in-order segment delivery over a reordering/lossy path,
// go-back-N retransmission driven by virtual-time timers, and
// flow-controlled sliding windows — everything the open-loop traffic
// plane needs to look like production RPC traffic while staying
// byte-identical at any parallelism or shard width.
//
// All state mutation happens inside engine event context, so a stack is
// exactly as deterministic as the engine that drives it. Loss and delay
// come from the fault plane via the net/segment site (fault.SiteNetSegment);
// a stack with no plane armed is a perfectly reliable in-order transport
// and never retransmits.
package netstack

import (
	"encoding/binary"
	"fmt"
	"sort"

	"svtsim/internal/fault"
	"svtsim/internal/sim"
)

// Conduit is the packet-delivery substrate a Stack runs over. It is the
// same shape as virtio.Transport (guest.NetDriver.AsTransport satisfies
// it) and is trivially implemented over netsim links or host IPIs.
type Conduit interface {
	// Send transmits one packet; done (may be nil) fires when the local
	// transmit completes (not when the peer receives it).
	Send(pkt []byte, done func())
	// SetReceiver registers the inbound packet handler.
	SetReceiver(fn func(pkt []byte))
}

// Segment header layout (22 bytes, big-endian):
//
//	[0:2]   magic 0xA5 0x17 — distinguishes netstack segments from raw
//	        packets sharing a conduit (echo peers, netping payloads)
//	[2]     flags (SYN | ACK | FIN | DATA)
//	[3]     reserved (zero)
//	[4:8]   flow ID
//	[8:12]  seq — first payload byte's offset in the flow's byte stream
//	[12:16] ack — next byte the sender of this segment expects
//	[16:20] wnd — advertised receive window in bytes
//	[20:22] payload length
const (
	magic0 = 0xA5
	magic1 = 0x17

	// HeaderSize is the fixed segment header length in bytes.
	HeaderSize = 22

	flagSYN  = 1 << 0
	flagACK  = 1 << 1
	flagFIN  = 1 << 2
	flagDATA = 1 << 3
)

// Segment is one decoded netstack segment.
type Segment struct {
	Flags   byte
	FlowID  uint32
	Seq     uint32
	Ack     uint32
	Wnd     uint32
	Payload []byte
}

// IsSegment reports whether pkt carries the netstack magic. Non-segment
// packets on a shared conduit are passed through untouched.
func IsSegment(pkt []byte) bool {
	return len(pkt) >= HeaderSize && pkt[0] == magic0 && pkt[1] == magic1
}

// Encode serialises the segment (header + payload copy).
func (s Segment) Encode() []byte {
	buf := make([]byte, HeaderSize+len(s.Payload))
	buf[0], buf[1] = magic0, magic1
	buf[2] = s.Flags
	binary.BigEndian.PutUint32(buf[4:8], s.FlowID)
	binary.BigEndian.PutUint32(buf[8:12], s.Seq)
	binary.BigEndian.PutUint32(buf[12:16], s.Ack)
	binary.BigEndian.PutUint32(buf[16:20], s.Wnd)
	binary.BigEndian.PutUint16(buf[20:22], uint16(len(s.Payload)))
	copy(buf[HeaderSize:], s.Payload)
	return buf
}

// Decode parses a segment; the payload aliases pkt.
func Decode(pkt []byte) (Segment, error) {
	if !IsSegment(pkt) {
		return Segment{}, fmt.Errorf("netstack: not a segment (%d bytes)", len(pkt))
	}
	n := int(binary.BigEndian.Uint16(pkt[20:22]))
	if len(pkt) < HeaderSize+n {
		return Segment{}, fmt.Errorf("netstack: truncated segment: header says %d payload bytes, have %d", n, len(pkt)-HeaderSize)
	}
	return Segment{
		Flags:   pkt[2],
		FlowID:  binary.BigEndian.Uint32(pkt[4:8]),
		Seq:     binary.BigEndian.Uint32(pkt[8:12]),
		Ack:     binary.BigEndian.Uint32(pkt[12:16]),
		Wnd:     binary.BigEndian.Uint32(pkt[16:20]),
		Payload: pkt[HeaderSize : HeaderSize+n],
	}, nil
}

// Params configures a Stack. The zero value selects the defaults.
type Params struct {
	// MSS bounds a DATA segment's payload. Default 1024.
	MSS int
	// Window is the per-flow receive buffer, which is also the window
	// advertised to the peer. Default 8192.
	Window int
	// RTO is the retransmission timeout. It is fixed (no adaptive
	// estimation, no backoff) so that loss recovery is a pure function
	// of the seed. Default 500 µs.
	RTO sim.Time
	// AckDelay, when positive, enables delayed ACKs with piggybacking:
	// a DATA segment is not acknowledged immediately — the cumulative
	// ack rides the next outbound segment on the flow, and only if none
	// goes out within AckDelay does a pure ACK fire. Zero (the default)
	// keeps the immediate-ACK behavior. Both settings are equally
	// deterministic; delayed ACKs exist for request/response flows
	// where the back-to-back ACK+DATA pair would otherwise double the
	// packet rate (the differential harness relies on the strict
	// ping-pong shape this produces).
	AckDelay sim.Time
}

func (p Params) withDefaults() Params {
	if p.MSS <= 0 {
		p.MSS = 1024
	}
	if p.Window <= 0 {
		p.Window = 8192
	}
	if p.RTO <= 0 {
		p.RTO = 500 * sim.Microsecond
	}
	return p
}

// Stats is a stack's lifetime counter block.
type Stats struct {
	SegsSent    uint64 // segments handed to the conduit (incl. retransmits)
	SegsRecv    uint64 // well-formed segments received
	DataBytes   uint64 // in-order payload bytes delivered to flows
	Retransmits uint64 // RTO-driven resends
	Dropped     uint64 // segments lost to the fault plane at this sender
	Delayed     uint64 // segments deferred by the fault plane
	OutOfOrder  uint64 // DATA segments buffered past a gap
	Duplicates  uint64 // DATA segments at or below the in-order point
	Malformed   uint64 // packets with the magic but an invalid header
}

// Stack multiplexes flows over one conduit. Create with New; open
// active flows with Open, and receive passive opens via OnFlow.
type Stack struct {
	Eng *sim.Engine
	P   Params

	c     Conduit
	flows map[uint32]*Flow

	// OnFlow, when set, is invoked for each passively opened flow (a
	// SYN for an unknown ID) before any of its data is delivered.
	OnFlow func(*Flow)

	// FaultSite, when non-empty, is consulted on every outbound segment
	// (fault.SiteNetSegment normally). Empty disables injection.
	FaultSite string

	Stats
}

// New builds a stack over the conduit and registers as its receiver.
// Loss/delay injection at fault.SiteNetSegment is on by default; it is
// inert until a fault plane arms that site.
func New(eng *sim.Engine, c Conduit, p Params) *Stack {
	st := &Stack{
		Eng:       eng,
		P:         p.withDefaults(),
		c:         c,
		flows:     make(map[uint32]*Flow),
		FaultSite: fault.SiteNetSegment,
	}
	c.SetReceiver(st.Deliver)
	return st
}

// Open actively opens flow id: a SYN goes out immediately and Write is
// legal at once (data transmits when the handshake completes). Opening
// an existing ID returns the existing flow.
func (st *Stack) Open(id uint32) *Flow {
	if f := st.flows[id]; f != nil {
		return f
	}
	f := st.newFlow(id)
	f.sendCtl(flagSYN)
	f.armRTO()
	return f
}

// Flow returns the flow with the given ID, or nil.
func (st *Stack) Flow(id uint32) *Flow { return st.flows[id] }

// Flows returns all flows, sorted by ID (deterministic iteration).
func (st *Stack) Flows() []*Flow {
	out := make([]*Flow, 0, len(st.flows))
	for _, f := range st.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (st *Stack) newFlow(id uint32) *Flow {
	f := &Flow{
		S:       st,
		ID:      id,
		peerWnd: uint32(st.P.Window), // assume symmetric until first ACK
		ooo:     make(map[uint32][]byte),
	}
	st.flows[id] = f
	return f
}

// Deliver feeds one raw packet into the stack (the conduit receiver;
// exported so composite demuxers and tests can inject directly).
// Non-segment packets are ignored.
func (st *Stack) Deliver(pkt []byte) {
	if !IsSegment(pkt) {
		return
	}
	seg, err := Decode(pkt)
	if err != nil {
		st.Malformed++
		return
	}
	st.SegsRecv++
	f := st.flows[seg.FlowID]
	if f == nil {
		if seg.Flags&flagSYN == 0 {
			// Data for a flow we never opened: drop. The peer's RTO
			// will retry and hit the same wall; that is fine — a
			// half-configured topology should be loud, not subtly lossy.
			return
		}
		f = st.newFlow(seg.FlowID)
		f.established = true
		if st.OnFlow != nil {
			st.OnFlow(f)
		}
		f.sendCtl(flagSYN | flagACK)
		return
	}
	f.handle(seg)
}

// send pushes one segment through the fault plane and onto the conduit.
func (st *Stack) send(seg Segment) {
	st.SegsSent++
	raw := seg.Encode()
	if st.FaultSite != "" {
		out := st.Eng.Inject(st.FaultSite)
		if out.Drop {
			st.Dropped++
			return
		}
		if out.Delay > 0 {
			st.Delayed++
			st.Eng.After(out.Delay, func() { st.c.Send(raw, nil) })
			return
		}
	}
	st.c.Send(raw, nil)
}

// Flow is one connection's endpoint state within a Stack.
type Flow struct {
	S  *Stack
	ID uint32

	established bool
	closed      bool // FIN seen from peer or sent by us

	// Send side. sndBuf holds every byte from sndUna onward; the prefix
	// [0, sndNxt-sndUna) is in flight, the rest is unsent backlog.
	sndUna  uint32
	sndNxt  uint32
	sndBuf  []byte
	peerWnd uint32
	rto     sim.EventRef
	rtoSet  bool

	// Receive side. rcvQ is in-order payload not yet consumed; ooo
	// buffers segments past a gap, keyed by seq.
	rcvNxt   uint32
	rcvQ     []byte
	ooo      map[uint32][]byte
	oooBytes int

	// Delayed-ACK state (AckDelay > 0 only): segsOut counts outbound
	// segments on this flow so handleData can tell whether something
	// already carried the ack; ackTimer is the pending pure-ACK.
	segsOut  uint64
	ackSet   bool
	ackTimer sim.EventRef

	// Manual, when true, suppresses automatic consumption: received
	// bytes accumulate in the flow until Consume drains them, and the
	// advertised window shrinks accordingly (this is how tests and
	// backpressured services exercise window stall/resume). When false
	// (default) in-order bytes are handed to OnData and the window
	// never closes.
	Manual bool
	// OnData receives each in-order chunk as it becomes deliverable
	// (automatic mode only).
	OnData func(b []byte)
	// OnAck fires whenever the peer acknowledges new data or opens its
	// window — senders use it to learn that backlog drained.
	OnAck func()
	// OnClose fires once when the peer's FIN arrives in order.
	OnClose func()
}

// Established reports whether the handshake completed.
func (f *Flow) Established() bool { return f.established }

// Closed reports whether a FIN has been processed in either direction.
func (f *Flow) Closed() bool { return f.closed }

// BytesQueued reports unacknowledged + unsent bytes held by the sender.
func (f *Flow) BytesQueued() int { return len(f.sndBuf) }

// BytesReadable reports in-order bytes awaiting Consume (manual mode).
func (f *Flow) BytesReadable() int { return len(f.rcvQ) }

// SendSeq reports the next fresh sequence number (total bytes written).
func (f *Flow) SendSeq() uint32 { return f.sndUna + uint32(len(f.sndBuf)) }

// RecvSeq reports the next expected in-order byte offset.
func (f *Flow) RecvSeq() uint32 { return f.rcvNxt }

// Write queues b on the flow's byte stream; the stack segments it,
// respects the peer's window, and retransmits on loss. The bytes are
// copied.
func (f *Flow) Write(b []byte) {
	if f.closed || len(b) == 0 {
		return
	}
	f.sndBuf = append(f.sndBuf, b...)
	f.pump()
}

// Close sends a FIN after all queued data; further Writes are ignored.
func (f *Flow) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.sendCtl(flagFIN)
}

// Consume drains up to n in-order received bytes (manual mode),
// returning what it took and re-advertising the opened window so a
// stalled sender resumes.
func (f *Flow) Consume(n int) []byte {
	if n <= 0 || len(f.rcvQ) == 0 {
		return nil
	}
	if n > len(f.rcvQ) {
		n = len(f.rcvQ)
	}
	out := f.rcvQ[:n:n]
	f.rcvQ = append([]byte(nil), f.rcvQ[n:]...)
	// Window update: tell the sender space opened up.
	f.sendCtl(flagACK)
	return out
}

// window is the receive window this end advertises.
func (f *Flow) window() uint32 {
	used := len(f.rcvQ) + f.oooBytes
	if used >= f.S.P.Window {
		return 0
	}
	return uint32(f.S.P.Window - used)
}

// inflight is the unacknowledged byte count.
func (f *Flow) inflight() uint32 { return f.sndNxt - f.sndUna }

// pump transmits as much backlog as the peer's window allows.
func (f *Flow) pump() {
	if !f.established {
		return
	}
	for {
		avail := len(f.sndBuf) - int(f.inflight())
		if avail <= 0 {
			break
		}
		wnd := f.peerWnd
		infl := f.inflight()
		if infl >= wnd {
			break // window closed: wait for an ACK/window update
		}
		n := avail
		if room := int(wnd - infl); n > room {
			n = room
		}
		if n > f.S.P.MSS {
			n = f.S.P.MSS
		}
		off := int(f.sndNxt - f.sndUna)
		f.segsOut++
		f.clearAck()
		f.S.send(Segment{
			Flags:   flagDATA | flagACK,
			FlowID:  f.ID,
			Seq:     f.sndNxt,
			Ack:     f.rcvNxt,
			Wnd:     f.window(),
			Payload: f.sndBuf[off : off+n],
		})
		f.sndNxt += uint32(n)
	}
	// Arm the timer while anything is unacknowledged, and also while
	// backlog waits on a closed window: if the peer's window-update ACK
	// is lost, the timeout fires a zero-window probe instead of
	// deadlocking the flow.
	if f.inflight() > 0 || (len(f.sndBuf) > 0 && f.peerWnd == 0) {
		f.armRTO()
	}
}

// sendCtl emits a payload-free control segment (SYN / ACK / FIN).
func (f *Flow) sendCtl(flags byte) {
	f.segsOut++
	f.clearAck()
	f.S.send(Segment{
		Flags:  flags,
		FlowID: f.ID,
		Seq:    f.sndNxt,
		Ack:    f.rcvNxt,
		Wnd:    f.window(),
	})
}

func (f *Flow) armRTO() {
	if f.rtoSet {
		return
	}
	f.rtoSet = true
	f.rto = f.S.Eng.After(f.S.P.RTO, f.fireRTO)
}

func (f *Flow) cancelRTO() {
	if !f.rtoSet {
		return
	}
	f.S.Eng.Cancel(f.rto)
	f.rtoSet = false
}

// armAck schedules the delayed pure ACK; any outbound segment before it
// fires piggybacks the ack and cancels it (clearAck).
func (f *Flow) armAck() {
	if f.ackSet {
		return
	}
	f.ackSet = true
	f.ackTimer = f.S.Eng.After(f.S.P.AckDelay, func() {
		f.ackSet = false
		f.sendCtl(flagACK)
	})
}

func (f *Flow) clearAck() {
	if !f.ackSet {
		return
	}
	f.S.Eng.Cancel(f.ackTimer)
	f.ackSet = false
}

// fireRTO retransmits go-back-N style: the oldest unacknowledged
// segment goes out again (the peer's cumulative ACK then pulls the rest
// forward or the next timeout resends more). An unestablished flow
// resends its SYN.
func (f *Flow) fireRTO() {
	f.rtoSet = false
	if !f.established {
		f.S.Retransmits++
		f.sendCtl(flagSYN)
		f.armRTO()
		return
	}
	if f.inflight() == 0 {
		if len(f.sndBuf) > 0 && f.peerWnd == 0 {
			// Zero-window probe: push one byte past the closed window
			// (the receiver accepts in-order data regardless and its ACK
			// carries the current window, unsticking us if the earlier
			// window update was lost).
			f.S.Retransmits++
			f.S.send(Segment{
				Flags: flagDATA | flagACK, FlowID: f.ID,
				Seq: f.sndNxt, Ack: f.rcvNxt, Wnd: f.window(),
				Payload: f.sndBuf[:1],
			})
			f.sndNxt++
			f.armRTO()
		}
		return
	}
	n := int(f.inflight())
	if n > f.S.P.MSS {
		n = f.S.P.MSS
	}
	f.S.Retransmits++
	f.S.send(Segment{
		Flags:   flagDATA | flagACK,
		FlowID:  f.ID,
		Seq:     f.sndUna,
		Ack:     f.rcvNxt,
		Wnd:     f.window(),
		Payload: f.sndBuf[:n],
	})
	f.armRTO()
}

// handle processes one inbound segment for an existing flow.
func (f *Flow) handle(seg Segment) {
	if seg.Flags&flagSYN != 0 {
		// SYN or SYN|ACK: handshake completes (idempotent on dup SYN).
		if !f.established {
			f.established = true
			f.cancelRTO()
			if seg.Flags&flagACK == 0 {
				f.sendCtl(flagSYN | flagACK)
			}
			f.pump()
		} else if seg.Flags&flagACK == 0 {
			f.sendCtl(flagSYN | flagACK) // our SYN|ACK was lost; re-ack
		}
		return
	}
	if seg.Flags&flagACK != 0 {
		f.handleAck(seg)
	}
	if seg.Flags&flagDATA != 0 && len(seg.Payload) > 0 {
		f.handleData(seg)
	}
	if seg.Flags&flagFIN != 0 && seg.Seq == f.rcvNxt {
		if !f.closed {
			f.closed = true
			if f.OnClose != nil {
				f.OnClose()
			}
		}
		f.sendCtl(flagACK)
	}
}

func (f *Flow) handleAck(seg Segment) {
	progressed := false
	if d := seg.Ack - f.sndUna; d > 0 && d <= f.inflight() {
		f.sndBuf = append([]byte(nil), f.sndBuf[d:]...)
		f.sndUna = seg.Ack
		progressed = true
		f.cancelRTO()
	}
	if seg.Wnd != f.peerWnd {
		if seg.Wnd > f.peerWnd {
			progressed = true
		}
		f.peerWnd = seg.Wnd
	}
	f.pump()
	if progressed && f.OnAck != nil {
		f.OnAck()
	}
}

func (f *Flow) handleData(seg Segment) {
	sent0 := f.segsOut
	switch {
	case seg.Seq == f.rcvNxt:
		f.ingest(seg.Payload)
		// Drain any out-of-order successors that are now contiguous.
		for {
			p, ok := f.ooo[f.rcvNxt]
			if !ok {
				break
			}
			delete(f.ooo, f.rcvNxt)
			f.oooBytes -= len(p)
			f.ingest(p)
		}
	case seg.Seq-f.rcvNxt < uint32(f.S.P.Window): // ahead, within window
		if _, dup := f.ooo[seg.Seq]; !dup {
			f.S.OutOfOrder++
			f.ooo[seg.Seq] = append([]byte(nil), seg.Payload...)
			f.oooBytes += len(seg.Payload)
		} else {
			f.S.Duplicates++
		}
	default: // at or below rcvNxt: retransmit of data we already have
		f.S.Duplicates++
	}
	// By default every DATA segment is acknowledged immediately, telling
	// the sender both the cumulative in-order point and the current
	// window. Under AckDelay the ack piggybacks instead: if delivering
	// the payload already pushed a segment out (OnData wrote a response,
	// which carries the ack), nothing more is needed; otherwise a pure
	// ACK is deferred, to be absorbed by the next outbound segment.
	if f.S.P.AckDelay <= 0 {
		f.sendCtl(flagACK)
	} else if f.segsOut == sent0 {
		f.armAck()
	}
}

// ingest advances rcvNxt over an in-order chunk and delivers it.
func (f *Flow) ingest(p []byte) {
	f.rcvNxt += uint32(len(p))
	f.S.DataBytes += uint64(len(p))
	if f.Manual {
		f.rcvQ = append(f.rcvQ, p...)
		return
	}
	if f.OnData != nil {
		f.OnData(append([]byte(nil), p...))
	}
}
