package netstack

import "svtsim/internal/sim"

// PipeEnd is one side of an in-engine packet pipe: a minimal Conduit
// with a fixed one-way latency, used by unit tests and by host-side
// stacks that do not sit on a virtio NIC. Delay, when set, prices each
// packet individually (index is the send ordinal on this end), which is
// how tests build deterministic reordering paths.
type PipeEnd struct {
	Eng *sim.Engine
	Lat sim.Time
	// Delay overrides Lat per packet when non-nil.
	Delay func(index uint64, pkt []byte) sim.Time

	peer *PipeEnd
	recv func(pkt []byte)
	sent uint64

	Packets uint64
	Bytes   uint64
}

// NewPipe builds a connected conduit pair with the given one-way latency.
func NewPipe(eng *sim.Engine, lat sim.Time) (*PipeEnd, *PipeEnd) {
	a := &PipeEnd{Eng: eng, Lat: lat}
	b := &PipeEnd{Eng: eng, Lat: lat}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conduit.
func (p *PipeEnd) Send(pkt []byte, done func()) {
	d := p.Lat
	if p.Delay != nil {
		d = p.Delay(p.sent, pkt)
	}
	p.sent++
	p.Packets++
	p.Bytes += uint64(len(pkt))
	cp := append([]byte(nil), pkt...)
	peer := p.peer
	p.Eng.After(d, func() {
		if peer.recv != nil {
			peer.recv(cp)
		}
	})
	if done != nil {
		p.Eng.After(0, done)
	}
}

// SetReceiver implements Conduit.
func (p *PipeEnd) SetReceiver(fn func(pkt []byte)) { p.recv = fn }
