// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated testbed and reports the *virtual-time* metric the paper
// plots via b.ReportMetric (wall-clock ns/op measures only how fast the
// simulator itself runs).
//
//	go test -bench=. -benchmem
package svtsim

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// --- Table 1 / Figure 6: the cpuid micro-benchmark ----------------------

func BenchmarkTable1BaselineCPUIDBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := CPUIDNested(Baseline, 500)
		b.ReportMetric(r.PerOp.Microseconds(), "virt-us/cpuid")
	}
}

func benchCPUID(b *testing.B, run func() CPUIDResult) {
	for i := 0; i < b.N; i++ {
		r := run()
		b.ReportMetric(r.PerOp.Microseconds(), "virt-us/cpuid")
	}
}

func BenchmarkFigure6NativeL0(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDNative(500) })
}
func BenchmarkFigure6SingleLevelL1(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDSingleLevel(500) })
}
func BenchmarkFigure6NestedL2(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDNested(Baseline, 500) })
}
func BenchmarkFigure6SWSVt(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDNested(SWSVt, 500) })
}
func BenchmarkFigure6HWSVt(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDNested(HWSVt, 500) })
}

// --- Figure 7: I/O subsystems -------------------------------------------

func benchModes(b *testing.B, run func(Mode) (metric float64, unit string)) {
	for _, mode := range Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, unit := run(mode)
				b.ReportMetric(m, unit)
			}
		})
	}
}

func BenchmarkFigure7NetLatency(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return NetLatency(m, 50).MeanUs, "virt-us/rtt"
	})
}

func BenchmarkFigure7NetBandwidth(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return NetBandwidth(m, 20*Millisecond).Mbps, "virt-Mbps"
	})
}

func BenchmarkFigure7DiskReadLatency(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return DiskLatency(m, false, 50).MeanUs, "virt-us/op"
	})
}

func BenchmarkFigure7DiskWriteLatency(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return DiskLatency(m, true, 50).MeanUs, "virt-us/op"
	})
}

func BenchmarkFigure7DiskReadBandwidth(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return DiskBandwidth(m, false, 80).KBs, "virt-KB/s"
	})
}

func BenchmarkFigure7DiskWriteBandwidth(b *testing.B) {
	benchModes(b, func(m Mode) (float64, string) {
		return DiskBandwidth(m, true, 80).KBs, "virt-KB/s"
	})
}

// --- Figure 8: memcached --------------------------------------------------

func BenchmarkFigure8Memcached(b *testing.B) {
	for _, mode := range []Mode{Baseline, SWSVt} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := Memcached(mode, 12000, 100*Millisecond)
				b.ReportMetric(r.P99Us, "virt-p99-us")
				b.ReportMetric(r.AvgUs, "virt-avg-us")
			}
		})
	}
}

// --- Figure 9: TPC-C -------------------------------------------------------

func BenchmarkFigure9TPCC(b *testing.B) {
	for _, mode := range []Mode{Baseline, SWSVt} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(TPCC(mode, 200*Millisecond), "virt-ktpm")
			}
		})
	}
}

// --- Figure 10: video playback --------------------------------------------

func BenchmarkFigure10Video(b *testing.B) {
	for _, mode := range []Mode{Baseline, SWSVt} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := VideoN(mode, 120, 6000)
				b.ReportMetric(float64(r.Dropped), "virt-drops")
			}
		})
	}
}

// --- §6.1: channel study (simulated) ---------------------------------------

func BenchmarkChannelStudy(b *testing.B) {
	for _, pol := range []WaitPolicy{PolicyPoll, PolicyMwait, PolicyMutex} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := ChannelStudy(100, []Time{0})
				for _, p := range pts {
					if p.Policy == pol && p.Placement == PlaceSMT {
						b.ReportMetric(p.PerOp.Microseconds(), "virt-us/cpuid")
					}
				}
			}
		})
	}
}

// --- §6.1 analogue on the host: real thread-handoff latency ----------------
//
// The paper compares polling, monitor/mwait and mutex wakeups between SMT
// siblings. Go cannot issue monitor/mwait, but the same design question —
// how expensive is a cross-thread ping-pong under each waiting discipline —
// can be measured directly on the host running this benchmark.

func BenchmarkHandoffChannel(b *testing.B) {
	req, resp := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-req:
				resp <- struct{}{}
			case <-done:
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req <- struct{}{}
		<-resp
	}
	b.StopTimer()
	close(done)
}

func BenchmarkHandoffMutexCond(b *testing.B) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	state := 0 // 0 idle, 1 request, 2 response, 3 stop
	go func() {
		mu.Lock()
		defer mu.Unlock()
		for {
			for state != 1 && state != 3 {
				cond.Wait()
			}
			if state == 3 {
				return
			}
			state = 2
			cond.Broadcast()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		state = 1
		cond.Broadcast()
		for state != 2 {
			cond.Wait()
		}
		state = 0
		mu.Unlock()
	}
	b.StopTimer()
	mu.Lock()
	state = 3
	cond.Broadcast()
	mu.Unlock()
}

func BenchmarkHandoffSpin(b *testing.B) {
	var flag atomic.Int64
	done := make(chan struct{})
	go func() {
		for {
			if flag.Load() == 1 {
				flag.Store(2)
			}
			if flag.Load() == 3 {
				close(done)
				return
			}
			runtime.Gosched()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flag.Store(1)
		for flag.Load() != 2 {
			runtime.Gosched()
		}
		flag.Store(0)
	}
	b.StopTimer()
	flag.Store(3)
	<-done
}

// --- Ablations (DESIGN.md §ablations) ---------------------------------------

// BenchmarkAblationBypass measures the paper's §3.1 future-work extension:
// delivering L1-owned exits straight to L1's context.
func BenchmarkAblationBypass(b *testing.B) {
	benchCPUID(b, func() CPUIDResult { return CPUIDNested(HWSVtBypass, 500) })
}

// BenchmarkAblationNoShadowing quantifies hardware VMCS shadowing by
// turning it off (every guest-hypervisor field access traps).
func BenchmarkAblationNoShadowing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := CPUIDNestedNoShadowing(500)
		b.ReportMetric(r.PerOp.Microseconds(), "virt-us/cpuid")
	}
}

// BenchmarkAblationThunkRegs sweeps the number of registers the software
// context-switch thunk moves ("dozens of registers", §1).
func BenchmarkAblationThunkRegs(b *testing.B) {
	for _, regs := range []int{8, 15, 30, 60} {
		b.Run(strconv.Itoa(regs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := CPUIDNestedWithThunkRegs(Baseline, regs, 300)
				b.ReportMetric(r.PerOp.Microseconds(), "virt-us/cpuid")
			}
		})
	}
}
