// Package svtsim is a full-system reproduction of "Using SMT to
// Accelerate Nested Virtualization" (Vilanova, Amit, Etsion — ISCA 2019):
// a deterministic simulator of nested virtualization on an SMT core, the
// paper's SVt hardware/software co-design, its software-only prototype,
// and the complete evaluation harness that regenerates every table and
// figure of the paper.
//
// The public API exposes three layers:
//
//   - Machine construction (NewNestedMachine, DefaultConfig): assemble an
//     L0/L1/L2 stack in baseline, SW SVt or HW SVt configuration and run
//     your own guest workloads on it.
//   - Workloads (the Workload* constructors): the paper's benchmark
//     programs — cpuid, netperf, ioping/fio, memcached+ETC, TPC-C, video.
//   - Experiments (CPUID*, NetLatency, Memcached, ...): one call per
//     table/figure of the paper, returning structured results.
//
// See examples/ for runnable entry points and EXPERIMENTS.md for the
// paper-vs-measured record.
package svtsim

import (
	"fmt"
	"io"

	"svtsim/internal/check"
	"svtsim/internal/cost"
	"svtsim/internal/exp"
	"svtsim/internal/fault"
	"svtsim/internal/guest"
	"svtsim/internal/hv"
	"svtsim/internal/machine"
	"svtsim/internal/obs"
	"svtsim/internal/parallel"
	"svtsim/internal/ports"
	"svtsim/internal/report"
	"svtsim/internal/sim"
	"svtsim/internal/snapshot"
	"svtsim/internal/swsvt"
)

// --- Parallel experiment fan-out ---------------------------------------

// SetParallelism sets the worker-pool width used by every experiment
// sweep (figure mode sweeps, the channel study, fault-sweep grids) and by
// svtbench's section fan-out. n <= 0 restores the default, GOMAXPROCS.
// Each experiment cell owns its own engine and seeded RNG streams, so
// results are byte-identical at any width; only wall-clock time changes.
//
// Deprecated: this sets the process-wide pool. Use NewSession with
// WithParallelism for per-campaign width.
func SetParallelism(n int) { parallel.SetWorkers(n) }

// Parallelism reports the effective worker-pool width.
func Parallelism() int { return parallel.Workers() }

// Mode selects the system variant under test.
type Mode = hv.Mode

// System variants.
const (
	Baseline = hv.ModeBaseline // stock nested virtualization (Algorithm 1)
	SWSVt    = hv.ModeSWSVt    // the software-only prototype (§5.2)
	HWSVt    = hv.ModeHWSVt    // the proposed hardware (§3–§4)
	// HWSVtBypass adds the paper's §3.1 future-work extension: exits owned
	// by the guest hypervisor are delivered straight to its context.
	HWSVtBypass = hv.ModeHWSVtBypass
)

// Modes lists the variants in the paper's presentation order.
//
// Deprecated: use AllModes, which returns a fresh slice that cannot be
// mutated out from under concurrent sweeps.
var Modes = AllModes()

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Config parameterizes a machine (cost model, SW SVt wait policy, ...).
type Config = machine.Config

// CostModel is the calibrated timing model (see internal/cost).
type CostModel = cost.Model

// DefaultConfig returns the calibrated configuration for a mode.
func DefaultConfig(mode Mode) Config { return machine.DefaultConfig(mode) }

// BaselineCosts returns the cost model calibrated to the paper's Table 1.
func BaselineCosts() CostModel { return cost.Baseline() }

// Machine is an assembled simulation of the full L0/L1/L2 stack.
type Machine = machine.Machine

// IOStack is the machine's network/disk plumbing.
type IOStack = machine.IOStack

// GuestEnv is the environment a guest workload body runs in.
type GuestEnv = guest.Env

// WaitPolicy is a SW SVt channel wait mechanism (§6.1).
type WaitPolicy = swsvt.Policy

// Placement is a SW SVt thread placement (§6.1).
type Placement = swsvt.Placement

// Wait policies and placements.
const (
	PolicyMwait = swsvt.PolicyMwait
	PolicyPoll  = swsvt.PolicyPoll
	PolicyMutex = swsvt.PolicyMutex

	PlaceSMT       = swsvt.PlaceSMT
	PlaceCrossCore = swsvt.PlaceCrossCore
	PlaceCrossNUMA = swsvt.PlaceCrossNUMA
)

// NewNestedMachine assembles the full three-level stack.
func NewNestedMachine(cfg Config) *Machine { return machine.NewNested(cfg) }

// WireIO installs the network and disk substrate into cfg before machine
// construction; the returned stack is populated as the guests boot.
func WireIO(cfg *Config) *IOStack {
	return machine.WireNestedIO(cfg, machine.DefaultIOParams())
}

// --- Experiment layer: one call per paper table/figure -----------------

// CPUIDResult is one Figure 6 bar (with the Table 1 breakdown attached
// for nested runs).
type CPUIDResult = exp.CPUIDResult

// CPUIDNative measures native cpuid (Figure 6 "L0").
func CPUIDNative(n int) CPUIDResult { return exp.CPUIDNative(n) }

// CPUIDSingleLevel measures single-level guest cpuid (Figure 6 "L1").
func CPUIDSingleLevel(n int) CPUIDResult { return exp.CPUIDSingleLevel(n) }

// CPUIDNested measures nested cpuid under the given mode (Figure 6
// "L2" / "SW SVt" / "HW SVt"; Table 1 for Baseline).
func CPUIDNested(mode Mode, n int) CPUIDResult { return exp.CPUIDNested(mode, n) }

// CPUIDNestedNoShadowing is the shadowing ablation: the baseline nested
// cpuid with hardware VMCS shadowing disabled, so every guest-hypervisor
// field access traps (§2.1).
func CPUIDNestedNoShadowing(n int) CPUIDResult { return exp.CPUIDNestedNoShadowing(n) }

// CPUIDNestedWithThunkRegs sweeps the context-switch thunk's register
// count ("dozens of registers", §1).
func CPUIDNestedWithThunkRegs(mode Mode, regs, n int) CPUIDResult {
	return exp.CPUIDNestedWithThunkRegs(mode, regs, n)
}

// IOResult is one Figure 7 measurement.
type IOResult = exp.IOResult

// NetLatency runs netperf TCP_RR (Figure 7).
func NetLatency(mode Mode, n int) IOResult { return exp.NetLatency(mode, n) }

// NetBandwidth runs netperf TCP_STREAM (Figure 7).
func NetBandwidth(mode Mode, d Time) IOResult { return exp.NetBandwidth(mode, d) }

// DiskLatency runs ioping (Figure 7).
func DiskLatency(mode Mode, write bool, n int) IOResult { return exp.DiskLatency(mode, write, n) }

// DiskBandwidth runs fio (Figure 7).
func DiskBandwidth(mode Mode, write bool, n int) IOResult { return exp.DiskBandwidth(mode, write, n) }

// MemcachedResult is one Figure 8 sweep point.
type MemcachedResult = exp.MemcachedResult

// Memcached runs the §6.3.1 open-loop ETC experiment.
func Memcached(mode Mode, rate float64, d Time) MemcachedResult { return exp.Memcached(mode, rate, d) }

// TPCC runs the §6.3.2 experiment, returning ktpm (Figure 9).
func TPCC(mode Mode, d Time) float64 { return exp.TPCC(mode, d) }

// VideoResult is one Figure 10 bar.
type VideoResult = exp.VideoResult

// Video runs the §6.3.3 playback experiment (full five minutes).
func Video(mode Mode, fps int) VideoResult { return exp.Video(mode, fps) }

// VideoN runs the playback experiment over a chosen number of frames.
func VideoN(mode Mode, fps, frames int) VideoResult { return exp.VideoN(mode, fps, frames) }

// TraceEntry is one recorded VM exit (observability).
type TraceEntry = hv.TraceEntry

// TraceNestedCPUID runs a nested cpuid workload with exit tracing and
// returns the most recent ring entries.
func TraceNestedCPUID(mode Mode, n, ring int) []TraceEntry {
	return exp.TraceNestedCPUID(mode, n, ring)
}

// ChannelPoint is one §6.1 channel-study cell.
type ChannelPoint = exp.ChannelPoint

// ChannelStudy sweeps the SW SVt wait policies and placements (§6.1).
func ChannelStudy(n int, workloads []Time) []ChannelPoint { return exp.ChannelStudy(n, workloads) }

// --- Observability plane -----------------------------------------------

// ObsOptions configures the observability plane: per-track trace ring
// capacity and engine dispatch-marker sampling.
type ObsOptions = obs.Options

// ObsPlane is one run's armed plane: the virtual-time tracer plus the
// metrics registry. Export with Tracer.WriteChromeTrace (Perfetto /
// chrome://tracing JSON), Tracer.WriteSummary (top-N span table) and
// Metrics.WriteCSV / Metrics.WriteJSON.
type ObsPlane = obs.Plane

// SetObs arms (or, with nil, disarms) tracing and metrics for all
// subsequent experiment runs. Arming never perturbs the simulation: the
// plane only records over virtual time, so results are byte-identical
// with tracing on or off.
//
// Deprecated: this mutates the default session shared by every
// package-level experiment. Use NewSession(WithObs(...)) so concurrent
// campaigns cannot race on one plane.
func SetObs(o *ObsOptions) { exp.SetObs(o) }

// LastObs returns the plane captured by the most recent experiment run
// (nil when disarmed).
//
// Deprecated: use NewSession(WithObs(...)) and (*Session).LastObs.
func LastObs() *ObsPlane { return exp.LastObs() }

// --- Fault-injection plane ---------------------------------------------

// FaultSpec configures the deterministic fault-injection plane: a seed
// plus per-site drop/delay rules (see internal/fault for site names).
type FaultSpec = fault.Spec

// FaultSiteConfig is one fault site's injection rule.
type FaultSiteConfig = fault.SiteConfig

// Fault-injection site names.
const (
	FaultSiteSVtWakeup      = fault.SiteSVtWakeup
	FaultSiteRingPush       = fault.SiteRingPush
	FaultSiteRingPop        = fault.SiteRingPop
	FaultSiteIRQ            = fault.SiteIRQ
	FaultSiteIPI            = fault.SiteIPI
	FaultSiteVirtioComplete = fault.SiteVirtioComplete
	FaultSiteBlkComplete    = fault.SiteBlkComplete
	FaultSiteMigrateCapture = fault.SiteMigrateCapture
	FaultSiteMigrateXfer    = fault.SiteMigrateTransfer
	FaultSiteMigrateRestore = fault.SiteMigrateRestore
)

// FaultSites lists every known injection site.
func FaultSites() []string { return fault.Sites() }

// ParseFaultSpec parses the CLI fault syntax
// ("site:rate=0.1,drop;site:delay=20us") into a spec with the given seed.
func ParseFaultSpec(arg string, seed int64) (*FaultSpec, error) { return fault.ParseSpec(arg, seed) }

// SetFaults arms (or, with nil, clears) fault injection for all
// subsequent experiment runs.
//
// Deprecated: use NewSession(WithFaults(...)) so concurrent campaigns
// cannot race on one spec.
func SetFaults(spec *FaultSpec) { exp.SetFaults(spec) }

// FaultSweepResult is one fault-injection run's outcome and recovery
// counters (watchdog fires, breaker trips, fallbacks).
type FaultSweepResult = exp.FaultSweepResult

// FaultSweep runs the nested cpuid workload with the given fault spec
// armed and reports how the recovery machinery coped.
func FaultSweep(mode Mode, spec *FaultSpec, n int) FaultSweepResult {
	return exp.FaultSweep(mode, spec, n, nil)
}

// FaultCell is one independent fault-sweep run in a grid.
type FaultCell = exp.FaultCell

// FaultSweepGrid runs every cell on the parallel worker pool (see
// SetParallelism) and returns results in cell order; the grid is
// byte-identical to running the cells serially.
func FaultSweepGrid(cells []FaultCell) []FaultSweepResult { return exp.FaultSweepGrid(cells) }

// --- Report layer: paper-formatted output ------------------------------

// ReportTable1 prints the Table 1 breakdown next to the paper's numbers.
func ReportTable1(w io.Writer, n int) { report.Table1(w, n) }

// ReportTable3 prints the code-change inventory (Table 3 analogue).
func ReportTable3(w io.Writer, root string) { report.Table3(w, root) }

// ReportTable4 prints the modelled machine parameters (Table 4).
func ReportTable4(w io.Writer) { report.Table4(w) }

// ReportFigure6 prints the cpuid latency comparison.
func ReportFigure6(w io.Writer, n int) { report.Figure6(w, n) }

// ReportFigure7 prints the I/O subsystem comparison.
func ReportFigure7(w io.Writer, quick bool) { report.Figure7(w, quick) }

// ReportFigure8 prints the memcached load sweep.
func ReportFigure8(w io.Writer, quick bool) { report.Figure8(w, quick) }

// ReportFigure9 prints the TPC-C comparison.
func ReportFigure9(w io.Writer, quick bool) { report.Figure9(w, quick) }

// ReportFigure10 prints the video playback comparison.
func ReportFigure10(w io.Writer, quick bool) { report.Figure10(w, quick) }

// ReportChannels prints the §6.1 channel study.
func ReportChannels(w io.Writer, quick bool) { report.Channels(w, quick) }

// ReportProfiles prints the §6.2/§6.3 exit-reason profiles.
func ReportProfiles(w io.Writer) { report.Profiles(w) }

// --- Differential check layer: cross-mode equivalence ------------------

// CheckSchedules generates and differentially checks n schedules from
// consecutive seeds starting at seed, running each under every mode and
// comparing guest-visible outcomes. Failing schedules are shrunk and
// written as replayable repro files under dir (when non-empty). It
// returns the number of inequivalent schedules found.
func CheckSchedules(w io.Writer, n int, seed int64, dir string) int {
	return check.RunBudget(w, n, seed, dir)
}

// CheckSchedulesPort is CheckSchedules on a named architecture port
// ("" or "x86" checks the default port): the oracle asserts
// mode-equivalence within that port. Ports are never compared against
// each other — they charge different costs by design.
func CheckSchedulesPort(w io.Writer, n int, seed int64, dir, port string) (int, error) {
	p, err := ports.Parse(port)
	if err != nil {
		return 0, err
	}
	return check.RunBudgetOpts(w, n, seed, dir, &check.RunOpts{Port: p}), nil
}

// ReplaySchedule decodes a schedule file (as written by CheckSchedules
// or shipped in the regression corpus) and re-runs the differential
// check on it, reporting any divergence.
func ReplaySchedule(w io.Writer, path string) error { return check.ReplayFile(w, path) }

// MigratePoint schedules one live migration inside a differential
// schedule: the VM's gang is snapshotted, digest-verified through a
// restore round trip, and moved to another core after op After, with
// the first Fails attempts forced to fail (Fails >= 3 forces an atomic
// rollback under the default attempt budget).
type MigratePoint = check.MigratePoint

// CheckMigratedSchedule generates the seeded schedule, overlays the
// given live-migration points (forcing a multi-core host if the
// generator chose a single-core run, and wrapping each After into the
// op range), and runs it through the differential oracle: the guest-
// visible outcome must be invariant to when — and whether — the VM was
// migrated or rolled back. The verdict is printed to w; a non-nil error
// reports divergence.
func CheckMigratedSchedule(w io.Writer, seed int64, pts []MigratePoint) error {
	s := check.Generate(seed)
	if s.Cores < 2 {
		s.Cores = 4
	}
	s.Migrate = nil
	for _, p := range pts {
		p.After %= len(s.Ops)
		s.Migrate = append(s.Migrate, p)
	}
	v := check.CheckSchedule(s, nil)
	fmt.Fprintln(w, v.String())
	if v.Failed() {
		return fmt.Errorf("svtsim: schedule %d not invariant under migration", seed)
	}
	return nil
}

// --- Snapshot layer: canonical machine state ---------------------------

// Snapshot is a machine's full architectural state in canonical
// serializable form: ordered named sections of flat word streams, with
// an FNV-1a digest, cheap copy-on-write clones, and incremental diff
// pricing. See internal/snapshot and DESIGN.md §13.
type Snapshot = snapshot.Snapshot

// CaptureSnapshot serializes a machine's architectural state at a
// quiescent boundary. io may be nil for machines without wired I/O.
func CaptureSnapshot(m *Machine, io *IOStack) *Snapshot { return snapshot.Capture(m, io) }

// RestoreSnapshot writes a snapshot back into a machine of identical
// configuration (the one it came from, or a freshly built twin).
func RestoreSnapshot(m *Machine, io *IOStack, snap *Snapshot) error {
	return snapshot.Restore(m, io, snap)
}

// SnapshotRoundTrip captures, restores, and re-captures, returning both
// digests; equal digests are the restore-fidelity guarantee live
// migration relies on.
func SnapshotRoundTrip(m *Machine, io *IOStack) (before, after uint64, err error) {
	return snapshot.RoundTrip(m, io)
}
