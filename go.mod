module svtsim

go 1.22
