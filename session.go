package svtsim

import (
	"io"

	"svtsim/internal/exp"
	"svtsim/internal/host"
	"svtsim/internal/hv"
	"svtsim/internal/ports"
	"svtsim/internal/report"
)

// AllModes returns the system variants in the paper's presentation
// order (Figure 6's bars). The result is a fresh slice each call —
// callers may reorder or trim it without affecting anyone else.
func AllModes() []Mode { return exp.AllModes() }

// ParseMode parses a mode name as printed by Mode.String ("baseline",
// "sw-svt", "hw-svt", "hw-svt-bypass"; "sw"/"hw"/"bypass" accepted as
// shorthand).
func ParseMode(s string) (Mode, error) { return hv.ParseMode(s) }

// --- Host topology (fleet-scale experiments) ---------------------------

// HostTopology describes the simulated host: sockets x cores x SMT
// contexts. SVt-thread placement classes (same core, cross-core,
// cross-NUMA) emerge from where the L0 scheduler lands threads on this
// topology rather than from a per-machine configuration knob.
type HostTopology = host.Topology

// HostCtxID is a hardware context index on a host topology.
type HostCtxID = host.CtxID

// HostParams is the host-level cost model: IPI latencies by distance,
// the scheduler quantum, and the SMT throughput share.
type HostParams = host.Params

// DefaultHostTopology is the paper's testbed: 2 sockets x 8 cores x 2
// SMT contexts (Table 4's dual E5-2630v3).
var DefaultHostTopology = host.DefaultTopology

// ParseHostTopology parses "SxCxT" ("2x8x2") or "CxT" ("8x2", one
// socket) into a validated topology.
func ParseHostTopology(s string) (HostTopology, error) { return host.ParseTopology(s) }

// DefaultHostParams returns the calibrated host cost model.
func DefaultHostParams() HostParams { return host.DefaultParams() }

// --- Architecture ports ------------------------------------------------

// PortNames lists the registered architecture ports in sorted order
// ("armlike", "x86").
func PortNames() []string { return ports.Names() }

// PortCell is one port x mode measurement of the cross-ISA comparison.
type PortCell = exp.PortCell

// PortComparison is the cross-ISA comparison grid: one row per port,
// cells across the four system variants.
type PortComparison = exp.PortComparison

// --- Session ----------------------------------------------------------

// A Session carries one experiment campaign's configuration — fault
// spec, observability, worker-pool width, host topology — as instance
// state. Two sessions never share mutable state, so concurrent
// campaigns (one traced, one not; different topologies) cannot race,
// which the package-level setters (SetObs, SetFaults, SetParallelism)
// could. Every package-level experiment function is also available as a
// Session method; the package-level forms run on an internal default
// session and remain supported for existing callers.
type Session struct {
	exp *exp.Session
	rep *report.Renderer
}

// Option configures a Session at construction.
type Option func(*exp.Session) error

// WithParallelism sets the session's worker-pool width for experiment
// sweeps. n <= 0 inherits the process-wide pool. Results are
// byte-identical at any width; only wall-clock time changes.
func WithParallelism(n int) Option {
	return func(s *exp.Session) error { s.SetParallelism(n); return nil }
}

// WithObs arms the observability plane for the session's runs.
func WithObs(o *ObsOptions) Option {
	return func(s *exp.Session) error { s.SetObs(o); return nil }
}

// WithFaults arms the deterministic fault-injection plane for the
// session's runs.
func WithFaults(spec *FaultSpec) Option {
	return func(s *exp.Session) error { s.SetFaults(spec); return nil }
}

// WithHostTopology sets the host topology used by the fleet-scale
// experiments (DensitySweep, Consolidation).
func WithHostTopology(t HostTopology) Option {
	return func(s *exp.Session) error { return s.SetTopology(t) }
}

// WithHostParams overrides the host-level cost model.
func WithHostParams(p HostParams) Option {
	return func(s *exp.Session) error { s.SetHostParams(p); return nil }
}

// WithPort selects the architecture port backing the session's machines
// by registry name ("" and "x86" both select the default VT-x/LAPIC
// model; "armlike" selects the EL2/vGIC-style model). The port's
// calibrated cost model, exit vocabulary, and interrupt controller come
// with it.
func WithPort(name string) Option {
	return func(s *exp.Session) error {
		p, err := ports.Parse(name)
		if err != nil {
			return err
		}
		s.SetPort(p)
		return nil
	}
}

// WithShards sets the virtual-time engine shard count used by the
// fleet-scale experiments. n <= 1 runs the single-heap engine. Results
// are byte-identical at any shard count; only wall-clock time changes.
func WithShards(n int) Option {
	return func(s *exp.Session) error { s.SetShards(n); return nil }
}

// NewSession constructs a session from the calibrated defaults plus the
// given options.
func NewSession(opts ...Option) (*Session, error) {
	es := exp.NewSession()
	for _, opt := range opts {
		if err := opt(es); err != nil {
			return nil, err
		}
	}
	return &Session{exp: es, rep: report.NewRenderer(es)}, nil
}

// --- Session configuration (mutable after construction) ----------------

// SetObs arms (or, with nil, disarms) tracing and metrics for the
// session's subsequent runs.
func (s *Session) SetObs(o *ObsOptions) { s.exp.SetObs(o) }

// LastObs returns the plane captured by the session's most recent run
// (nil when disarmed).
func (s *Session) LastObs() *ObsPlane { return s.exp.LastObs() }

// SetFaults arms (or, with nil, clears) fault injection for the
// session's subsequent runs.
func (s *Session) SetFaults(spec *FaultSpec) { s.exp.SetFaults(spec) }

// SetParallelism sets the session's worker-pool width for sweeps.
func (s *Session) SetParallelism(n int) { s.exp.SetParallelism(n) }

// Parallelism reports the session's effective worker-pool width.
func (s *Session) Parallelism() int { return s.exp.Workers() }

// SetShards sets the engine shard count for fleet-scale experiments.
func (s *Session) SetShards(n int) { s.exp.SetShards(n) }

// Shards reports the session's effective engine shard count.
func (s *Session) Shards() int { return s.exp.Shards() }

// SetHostTopology sets the host topology for fleet-scale experiments.
func (s *Session) SetHostTopology(t HostTopology) error { return s.exp.SetTopology(t) }

// HostTopology reports the session's host topology.
func (s *Session) HostTopology() HostTopology { return s.exp.Topology() }

// SetPort selects the architecture port for the session's subsequent
// runs by registry name ("" restores the default x86 port).
func (s *Session) SetPort(name string) error {
	p, err := ports.Parse(name)
	if err != nil {
		return err
	}
	s.exp.SetPort(p)
	return nil
}

// Port reports the name of the session's architecture port.
func (s *Session) Port() string { return s.exp.Port().Name() }

// --- Session experiments: one method per paper table/figure ------------

// CPUIDNative measures native cpuid (Figure 6 "L0").
func (s *Session) CPUIDNative(n int) CPUIDResult { return s.exp.CPUIDNative(n) }

// CPUIDSingleLevel measures single-level guest cpuid (Figure 6 "L1").
func (s *Session) CPUIDSingleLevel(n int) CPUIDResult { return s.exp.CPUIDSingleLevel(n) }

// CPUIDNested measures nested cpuid under the given mode.
func (s *Session) CPUIDNested(mode Mode, n int) CPUIDResult { return s.exp.CPUIDNested(mode, n) }

// CPUIDNestedNoShadowing is the §2.1 shadowing ablation.
func (s *Session) CPUIDNestedNoShadowing(n int) CPUIDResult { return s.exp.CPUIDNestedNoShadowing(n) }

// CPUIDNestedWithThunkRegs sweeps the context-switch thunk's register
// count.
func (s *Session) CPUIDNestedWithThunkRegs(mode Mode, regs, n int) CPUIDResult {
	return s.exp.CPUIDNestedWithThunkRegs(mode, regs, n)
}

// TraceNestedCPUID runs a nested cpuid workload with exit tracing.
func (s *Session) TraceNestedCPUID(mode Mode, n, ring int) []TraceEntry {
	return s.exp.TraceNestedCPUID(mode, n, ring)
}

// NetLatency runs netperf TCP_RR (Figure 7).
func (s *Session) NetLatency(mode Mode, n int) IOResult { return s.exp.NetLatency(mode, n) }

// NetBandwidth runs netperf TCP_STREAM (Figure 7).
func (s *Session) NetBandwidth(mode Mode, d Time) IOResult { return s.exp.NetBandwidth(mode, d) }

// DiskLatency runs ioping (Figure 7).
func (s *Session) DiskLatency(mode Mode, write bool, n int) IOResult {
	return s.exp.DiskLatency(mode, write, n)
}

// DiskBandwidth runs fio (Figure 7).
func (s *Session) DiskBandwidth(mode Mode, write bool, n int) IOResult {
	return s.exp.DiskBandwidth(mode, write, n)
}

// Memcached runs the §6.3.1 open-loop ETC experiment.
func (s *Session) Memcached(mode Mode, rate float64, d Time) MemcachedResult {
	return s.exp.Memcached(mode, rate, d)
}

// TPCC runs the §6.3.2 experiment, returning ktpm (Figure 9).
func (s *Session) TPCC(mode Mode, d Time) float64 { return s.exp.TPCC(mode, d) }

// Video runs the §6.3.3 playback experiment (full five minutes).
func (s *Session) Video(mode Mode, fps int) VideoResult { return s.exp.Video(mode, fps) }

// VideoN runs the playback experiment over a chosen number of frames.
func (s *Session) VideoN(mode Mode, fps, frames int) VideoResult {
	return s.exp.VideoN(mode, fps, frames)
}

// ChannelStudy sweeps the SW SVt wait policies and placements (§6.1).
func (s *Session) ChannelStudy(n int, workloads []Time) []ChannelPoint {
	return s.exp.ChannelStudy(n, workloads)
}

// ComparePorts runs the nested TCP_RR workload (n transactions) for
// every named architecture port (empty = all registered) across all four
// system variants and returns the cross-ISA grid.
func (s *Session) ComparePorts(portNames []string, n int) (*PortComparison, error) {
	return s.exp.ComparePorts(portNames, n)
}

// FaultSweep runs the nested cpuid workload with the given fault spec
// armed and reports how the recovery machinery coped.
func (s *Session) FaultSweep(mode Mode, spec *FaultSpec, n int) FaultSweepResult {
	return s.exp.FaultSweep(mode, spec, n, nil)
}

// FaultSweepGrid runs every cell on the session's worker pool; results
// are in cell order and byte-identical to a serial run.
func (s *Session) FaultSweepGrid(cells []FaultCell) []FaultSweepResult {
	return s.exp.FaultSweepGrid(cells)
}

// --- Fleet-scale experiments -------------------------------------------

// DensityVM is one VM's outcome at one packing level.
type DensityVM = exp.DensityVM

// DensityPoint is one packing level: k VMs on the host in one mode.
type DensityPoint = exp.DensityPoint

// DensityResult is one mode's full packing sweep.
type DensityResult = exp.DensityResult

// Consolidation packs k nested VMs onto the session's host topology in
// one mode: the L0 scheduler places each VM's threads (a SW-SVt VM is a
// two-thread gang), and the point reports per-VM latency and throughput
// under contention — SMT sibling interference, polling SVt-threads
// stealing sibling cycles, migrations with cross-core reschedule IPIs.
func (s *Session) Consolidation(mode Mode, k int) DensityPoint { return s.exp.Consolidation(mode, k) }

// DensitySweep packs k = 1..kmax nested VMs per mode and reports every
// packing level plus the max density whose worst per-VM p99 meets the
// SLO (microseconds). kmax <= 0 sweeps up to the topology's context
// count. The sweep is byte-identical at any parallelism width.
func (s *Session) DensitySweep(modes []Mode, kmax int, sloUs float64) []DensityResult {
	return s.exp.DensitySweep(modes, kmax, sloUs)
}

// StormResult is one mode's outcome under a migration storm.
type StormResult = exp.StormResult

// MigrationStorm packs k VMs in one mode and replays them under a
// seeded storm of `storms` live gang migrations: VMs are paused,
// snapshotted, moved between cores at distance-priced transfer rates,
// and sometimes forced to fail mid-flight — driving retries, backoff,
// and atomic gang rollback. The session's fault spec, when armed, fires
// at the migrate/* sites during the storm. Deterministic per seed.
func (s *Session) MigrationStorm(mode Mode, k, storms int, seed int64) StormResult {
	return s.exp.MigrationStorm(mode, k, storms, seed)
}

// StormTable runs MigrationStorm for every mode on the session's worker
// pool; the table is byte-identical to running the cells serially.
func (s *Session) StormTable(modes []Mode, k, storms int, seed int64) []StormResult {
	return s.exp.StormTable(modes, k, storms, seed)
}

// LBResult is one (mode, scenario) cell of the load-balancer figure:
// offered/completed counts, goodput, p50/p99/p999 tail latency,
// SLO-violation windows, transport tallies, and storm counters.
type LBResult = exp.LBResult

// LBScenarios lists the supported load-balancer scenario names in
// report order: steady, overload, burst, storm, faults.
func LBScenarios() []string { return exp.LBScenarios() }

// LoadBalancer runs one (mode, scenario) cell: k nested backend VMs
// packed on the session's host topology behind an L0-side balancer
// spraying an open-loop arrival trace over reliable netstack flows.
// Phase 1 measures each backend's service distribution uncontended
// through the mode's full exit machinery; phase 2 replays fleet
// contention (plus the storm or fault plane, per scenario) and drives
// the seeded traffic trace across the host's topology-priced delivery
// fabric. Byte-identical at any parallelism width and shard count.
func (s *Session) LoadBalancer(mode Mode, k int, scenario string, seed int64, sloUs float64) LBResult {
	return s.exp.LoadBalancer(mode, k, scenario, seed, sloUs)
}

// LoadBalancerTable runs LoadBalancer for every mode on the session's
// worker pool; the table is byte-identical to running the cells
// serially.
func (s *Session) LoadBalancerTable(modes []Mode, k int, scenario string, seed int64, sloUs float64) []LBResult {
	return s.exp.LoadBalancerTable(modes, k, scenario, seed, sloUs)
}

// LoadBalancerSweep runs every scenario for every mode (scenario-major
// rows in LBScenarios order, mode-minor columns).
func (s *Session) LoadBalancerSweep(modes []Mode, k int, seed int64, sloUs float64) []LBResult {
	return s.exp.LoadBalancerSweep(modes, k, seed, sloUs)
}

// --- Session reports: paper-formatted output ---------------------------

// ReportTable1 prints the Table 1 breakdown next to the paper's numbers.
func (s *Session) ReportTable1(w io.Writer, n int) { s.rep.Table1(w, n) }

// ReportFigure6 prints the cpuid latency comparison.
func (s *Session) ReportFigure6(w io.Writer, n int) { s.rep.Figure6(w, n) }

// ReportFigure7 prints the I/O subsystem comparison.
func (s *Session) ReportFigure7(w io.Writer, quick bool) { s.rep.Figure7(w, quick) }

// ReportFigure8 prints the memcached load sweep.
func (s *Session) ReportFigure8(w io.Writer, quick bool) { s.rep.Figure8(w, quick) }

// ReportFigure9 prints the TPC-C comparison.
func (s *Session) ReportFigure9(w io.Writer, quick bool) { s.rep.Figure9(w, quick) }

// ReportFigure10 prints the video playback comparison.
func (s *Session) ReportFigure10(w io.Writer, quick bool) { s.rep.Figure10(w, quick) }

// ReportChannels prints the §6.1 channel study.
func (s *Session) ReportChannels(w io.Writer, quick bool) { s.rep.Channels(w, quick) }

// ReportProfiles prints the §6.2/§6.3 exit-reason profiles.
func (s *Session) ReportProfiles(w io.Writer) { s.rep.Profiles(w) }

// ReportDensity prints the fleet consolidation sweep: per-mode packing
// levels with worst-case latency, aggregate throughput, utilization,
// and the max density meeting the p99 SLO.
func (s *Session) ReportDensity(w io.Writer, kmax int, sloUs float64) {
	s.rep.Density(w, kmax, sloUs)
}

// ReportPorts prints the cross-ISA comparison table: every named port
// (empty = all registered) under all four system variants, with exit
// counts bucketed by each port's taxonomy.
func (s *Session) ReportPorts(w io.Writer, portNames []string, n int) error {
	return s.rep.Ports(w, portNames, n)
}
