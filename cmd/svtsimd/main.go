// Command svtsimd is svtsim's simulation-as-a-service daemon: a
// long-running HTTP/JSON server wrapping the experiment Session behind
// a bounded job queue, a worker pool, and a content-addressed result
// cache. See DESIGN.md §15 and the README quickstart.
//
//	svtsimd -listen 127.0.0.1:8080 -workers 4 -cache-mb 64
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), accepted
// jobs finish (or are canceled at -drain-timeout), and the final
// endpoint/cache metrics are flushed to stderr before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"svtsim/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve the /v1 API on")
	workers := flag.Int("workers", 2, "jobs simulated concurrently")
	queue := flag.Int("queue", 32, "max jobs admitted but not yet running (full queue answers 429)")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock budget (0 = none), e.g. 2m")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB (0 disables caching)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	simWorkers := flag.Int("sim-workers", 0, "in-job sweep parallelism (0 = all cores)")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:     *workers,
		Queue:       *queue,
		JobTimeout:  *timeout,
		CacheBudget: *cacheMB << 20,
		SimWorkers:  *simWorkers,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svtsimd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "svtsimd: serving on http://%s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queue, *cacheMB)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "svtsimd: %v, draining (timeout %v)\n", s, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "svtsimd:", err)
		os.Exit(1)
	}

	// Drain: stop admitting, finish (or cancel) accepted jobs, stop the
	// listener, then flush metrics.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "svtsimd: drain deadline hit, in-flight jobs canceled: %v\n", err)
	}
	if err := hs.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "svtsimd:", err)
	}
	fmt.Fprintln(os.Stderr, "svtsimd: final metrics")
	fmt.Fprint(os.Stderr, srv.MetricsText())
}
