// Command svtsim runs a single workload on the simulated nested
// virtualization stack and reports its performance under one of the three
// system variants.
//
// Usage:
//
//	svtsim -mode baseline -workload cpuid -n 1000
//	svtsim -mode sw-svt   -workload netrr -n 200
//	svtsim -mode hw-svt   -workload diskrd -n 200
//	svtsim -mode sw-svt   -workload tpcc -dur 1s
//	svtsim -mode baseline -workload video -fps 120
//
// Fleet consolidation: -density packs k = 1..-vms nested VMs onto the
// -host topology per mode, letting the simulated L0 scheduler place each
// VM's threads, and reports per-VM latency under contention plus the max
// density meeting the -slo p99 target. The sweep is byte-identical at
// any -parallel width and any -shards count (-shards splits the
// virtual-time engine into per-socket-group shards that advance in
// conservative lookahead windows; the merge is order-exact, so output
// never changes — only wall-clock time does).
//
//	svtsim -host 2x8x2 -vms 16 -density
//	svtsim -host 1x4x2 -vms 8 -density -slo 250 -parallel 8
//	svtsim -host 2x8x2 -vms 16 -density -shards 4
//
// Observability: -trace out.json writes a Perfetto / chrome://tracing
// timeline of the run (one track per hardware context), -metrics out.csv
// dumps every registered counter, and -summary N prints a top-N
// "where did the cycles go" table. None of these perturb the simulated
// results.
//
//	svtsim -mode sw-svt -workload netrr -n 200 -trace out.json -metrics out.csv -summary 10
//
// Differential checking: -check N generates N seeded schedules and runs
// each under every mode, comparing guest-visible outcomes; failures are
// shrunk and written as repro files. -replay FILE re-runs one schedule
// file (a repro or a corpus entry) through the same oracle.
//
//	svtsim -check 25 -check-seed 1
//	svtsim -replay repro-7.sched
//
// Live migration: -migrate overlays snapshot-backed live-migration
// points on a generated schedule and requires the guest-visible outcome
// to be invariant to them (fails>=3 forces a mid-migration rollback);
// -storm packs -vms VMs per mode and batters them with a seeded storm
// of N concurrent gang migrations, reporting per-mode tail latency and
// the recovery counters. Both are byte-identical per seed.
//
//	svtsim -migrate 2:0,5:3 -check-seed 7
//	svtsim -storm 24 -vms 8 -host 2x8x2 -storm-seed 42
//
// Load balancing: -lb sprays an open-loop arrival trace from an
// L0-side balancer across N nested VMs per mode over reliable
// netstack flows and reports goodput, p50/p99/p999 tail latency, and
// SLO-violation windows. Scenarios: steady, overload, burst, storm
// (concurrent gang migrations), faults (seeded segment loss), or all.
// Byte-identical at any -parallel width and -shards count.
//
//	svtsim -lb 4 -lb-scenario overload -host 1x4x2
//	svtsim -lb 8 -lb-scenario all -shards 2
//
// Architecture ports: -port selects the ISA backend — "x86" (default;
// VT-x exits, LAPIC, paper Table 1 costs) or "armlike" (trap-to-EL2
// costs, vGIC list registers, NV2-style memory-backed nested state).
// Every experiment above honors it. -portcmp runs the net round-trip
// workload across all registered ports and all four modes in one
// invocation and prints the per-port Figure-6-style comparison table
// (exit counts, mean/p50/p99, SVt speedup, exits by class).
//
//	svtsim -port armlike -mode hw-svt -workload netrr -n 200
//	svtsim -port armlike -density -vms 8
//	svtsim -port armlike -check 25
//	svtsim -portcmp -n 400
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"svtsim"
)

// buildFaultSpec combines the -faults spec syntax with the -fault-rate
// shorthand (lost SW-SVt wakeups plus dropped IPIs, the acceptance
// scenario) into one armed spec, or nil when both are unset.
func buildFaultSpec(arg string, rate float64, seed int64) (*svtsim.FaultSpec, error) {
	var spec *svtsim.FaultSpec
	if arg != "" {
		s, err := svtsim.ParseFaultSpec(arg, seed)
		if err != nil {
			return nil, err
		}
		spec = s
	}
	if rate > 0 {
		if rate > 1 {
			return nil, fmt.Errorf("-fault-rate %v: must be in (0, 1]", rate)
		}
		if spec == nil {
			spec = &svtsim.FaultSpec{Seed: seed}
		}
		spec.Sites = append(spec.Sites,
			svtsim.FaultSiteConfig{Site: svtsim.FaultSiteSVtWakeup, Rate: rate, Drop: true},
			svtsim.FaultSiteConfig{Site: svtsim.FaultSiteIPI, Rate: rate, Drop: true},
		)
	}
	return spec, nil
}

// lbScenarioKnown reports whether name is one of the -lb scenarios.
func lbScenarioKnown(name string) bool {
	for _, s := range svtsim.LBScenarios() {
		if s == name {
			return true
		}
	}
	return false
}

// parseMigratePoints parses the -migrate syntax "after:fails[,...]".
func parseMigratePoints(arg string) ([]svtsim.MigratePoint, error) {
	var pts []svtsim.MigratePoint
	for _, part := range strings.Split(arg, ",") {
		var after, fails int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &after, &fails); err != nil {
			return nil, fmt.Errorf("-migrate %q: want after:fails[,after:fails...]", arg)
		}
		if after < 0 || fails < 0 || fails > 8 {
			return nil, fmt.Errorf("-migrate %q: after must be >= 0 and fails in 0..8", arg)
		}
		pts = append(pts, svtsim.MigratePoint{After: after, Fails: fails})
	}
	return pts, nil
}

func main() {
	var (
		modeStr   = flag.String("mode", "baseline", "system variant: baseline, sw-svt, hw-svt")
		portStr   = flag.String("port", "x86", "architecture port: "+strings.Join(svtsim.PortNames(), ", "))
		portCmp   = flag.Bool("portcmp", false, "run the cross-ISA comparison (every port x every mode, netrr workload), then exit")
		workload  = flag.String("workload", "cpuid", "cpuid, netrr, stream, diskrd, diskwr, memcached, tpcc, video")
		n         = flag.Int("n", 500, "iterations (cpuid/netrr/disk*)")
		dur       = flag.Duration("dur", time.Second, "duration (stream/memcached/tpcc)")
		rate      = flag.Float64("rate", 10000, "offered load in requests/s (memcached)")
		fps       = flag.Int("fps", 120, "frame rate (video)")
		hostStr   = flag.String("host", "2x8x2", "host topology for -density: sockets x cores x SMT contexts")
		vms       = flag.Int("vms", 0, "max packing level for -density (0 = the topology's context count)")
		density   = flag.Bool("density", false, "run the fleet consolidation sweep across all modes, then exit")
		slo       = flag.Float64("slo", 500, "p99 latency SLO in microseconds judged by -density")
		par       = flag.Int("parallel", 0, "worker-pool width for sweeps (0 = GOMAXPROCS; results identical at any width)")
		shards    = flag.Int("shards", 1, "engine shard count for fleet experiments (<=1 = single heap; results identical at any count)")
		trace     = flag.String("trace", "", "write a Perfetto/chrome://tracing JSON timeline of the run to this file")
		metrics   = flag.String("metrics", "", "write the metrics registry to this file (.json extension selects JSON, CSV otherwise)")
		summary   = flag.Int("summary", 0, "print the top-N trace span summary after the run")
		obsRing   = flag.Int("obs-ring", 0, "per-track trace ring capacity (0 = default)")
		dumpExits = flag.Int("dump-exits", 0, "dump the last N VM exits after a cpuid run")
		faults    = flag.String("faults", "", "fault spec: site:key=val,...;... (sites: "+strings.Join(svtsim.FaultSites(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 1, "fault plane RNG seed (replays are byte-identical per seed)")
		faultRate = flag.Float64("fault-rate", 0, "shorthand: drop SW-SVt wakeups and IPIs at this probability")
		checkN    = flag.Int("check", 0, "differentially check N generated schedules across all modes, then exit")
		checkSeed = flag.Int64("check-seed", 1, "first schedule seed for -check (seeds are consecutive)")
		checkDir  = flag.String("check-dir", ".", "directory for shrunk repro files written by -check")
		replay    = flag.String("replay", "", "replay a schedule file through the differential check, then exit")
		migrate   = flag.String("migrate", "", "live-migration points after:fails[,after:fails...] overlaid on the -check-seed schedule, differentially checked, then exit (fails>=3 forces rollback)")
		storm     = flag.Int("storm", 0, "run a seeded storm of N live gang migrations over -vms packed VMs per mode, then exit")
		stormSeed = flag.Int64("storm-seed", 42, "storm plan seed for -storm (runs are byte-identical per seed)")
		lb        = flag.Int("lb", 0, "run the load-balancer scenario with N nested backend VMs per mode, then exit")
		lbScen    = flag.String("lb-scenario", "steady", "lb scenario: "+strings.Join(svtsim.LBScenarios(), ", ")+", or all")
		lbSeed    = flag.Int64("lb-seed", 42, "lb arrival/storm/loss seed (runs are byte-identical per seed)")
		lbSLO     = flag.Float64("lb-slo", 1000, "per-request latency SLO in microseconds judged by -lb")
		submit    = flag.String("submit", "", "run via a svtsimd daemon at this base URL (e.g. http://127.0.0.1:8080) instead of in-process")
	)
	flag.Parse()

	if *lbScen != "all" && !lbScenarioKnown(*lbScen) {
		fmt.Fprintf(os.Stderr, "-lb-scenario %q: want all or one of %s\n",
			*lbScen, strings.Join(svtsim.LBScenarios(), ", "))
		os.Exit(2)
	}

	if *submit != "" {
		os.Exit(runRemote(*submit, remoteFlags{
			mode: *modeStr, workload: *workload, hostStr: *hostStr, port: *portStr,
			n: *n, fps: *fps, vms: *vms, shards: *shards,
			dur: *dur, rate: *rate, slo: *slo,
			density: *density, storm: *storm, checkN: *checkN,
			stormSeed: *stormSeed, checkSeed: *checkSeed,
			lb: *lb, lbScen: *lbScen, lbSeed: *lbSeed, lbSLO: *lbSLO,
			faults: *faults, faultSeed: *faultSeed, faultRate: *faultRate,
			trace: *trace, metrics: *metrics,
			replay: *replay, migrate: *migrate,
		}))
	}

	if *replay != "" {
		if err := svtsim.ReplaySchedule(os.Stdout, *replay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: equivalent across all modes\n", *replay)
		return
	}
	if *checkN > 0 {
		failures, err := svtsim.CheckSchedulesPort(os.Stdout, *checkN, *checkSeed, *checkDir, *portStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	if *migrate != "" {
		pts, err := parseMigratePoints(*migrate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := svtsim.CheckMigratedSchedule(os.Stdout, *checkSeed, pts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	topo, err := svtsim.ParseHostTopology(*hostStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *shards > topo.Cores() {
		fmt.Fprintf(os.Stderr, "-shards %d: host %s has only %d cores\n", *shards, topo, topo.Cores())
		os.Exit(2)
	}
	opts := []svtsim.Option{svtsim.WithHostTopology(topo), svtsim.WithParallelism(*par),
		svtsim.WithShards(*shards), svtsim.WithPort(*portStr)}
	if spec, err := buildFaultSpec(*faults, *faultRate, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	} else if spec != nil {
		fmt.Fprintf(os.Stderr, "fault plane armed: %s (seed %d)\n", spec, spec.Seed)
		opts = append(opts, svtsim.WithFaults(spec))
	}
	wantObs := *trace != "" || *metrics != "" || *summary > 0
	if wantObs {
		opts = append(opts, svtsim.WithObs(&svtsim.ObsOptions{RingCap: *obsRing}))
	}
	sess, err := svtsim.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *storm > 0 {
		k := *vms
		if k <= 0 {
			k = 8
		}
		fmt.Printf("migration storm: %d VMs, %d events, seed %d, host %s\n", k, *storm, *stormSeed, topo)
		for _, r := range sess.StormTable(svtsim.AllModes(), k, *storm, *stormSeed) {
			fmt.Println(r.StatsLine())
		}
		return
	}

	if *lb > 0 {
		fmt.Printf("load balancer: %d VMs, scenario %s, seed %d, slo %.0f us, host %s\n",
			*lb, *lbScen, *lbSeed, *lbSLO, topo)
		var rows []svtsim.LBResult
		if *lbScen == "all" {
			rows = sess.LoadBalancerSweep(svtsim.AllModes(), *lb, *lbSeed, *lbSLO)
		} else {
			rows = sess.LoadBalancerTable(svtsim.AllModes(), *lb, *lbScen, *lbSeed, *lbSLO)
		}
		for _, r := range rows {
			fmt.Println(r.StatsLine())
		}
		if wantObs {
			writeObs(sess, *trace, *metrics, *summary)
		}
		return
	}

	if *portCmp {
		if err := sess.ReportPorts(os.Stdout, nil, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *density {
		sess.ReportDensity(os.Stdout, *vms, *slo)
		return
	}

	mode, err := svtsim.ParseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d := svtsim.Time(dur.Nanoseconds())

	switch *workload {
	case "cpuid":
		r := sess.CPUIDNested(mode, *n)
		fmt.Printf("nested cpuid (%s): %v per instruction\n", mode, r.PerOp)
		if *dumpExits > 0 {
			for _, e := range sess.TraceNestedCPUID(mode, *n, *dumpExits) {
				fmt.Println(" ", e.String())
			}
		}
	case "netrr":
		r := sess.NetLatency(mode, *n)
		fmt.Printf("netperf TCP_RR (%s): mean %.1f us, p99 %.1f us\n", mode, r.MeanUs, r.P99Us)
	case "stream":
		r := sess.NetBandwidth(mode, d)
		fmt.Printf("netperf TCP_STREAM (%s): %.0f Mbps\n", mode, r.Mbps)
	case "diskrd":
		r := sess.DiskLatency(mode, false, *n)
		fmt.Printf("ioping randread (%s): mean %.1f us\n", mode, r.MeanUs)
	case "diskwr":
		r := sess.DiskLatency(mode, true, *n)
		fmt.Printf("ioping randwrite (%s): mean %.1f us\n", mode, r.MeanUs)
	case "memcached":
		r := sess.Memcached(mode, *rate, d)
		fmt.Printf("memcached ETC @%.0f q/s (%s): avg %.0f us, p99 %.0f us, served %d\n",
			*rate, mode, r.AvgUs, r.P99Us, r.Served)
	case "tpcc":
		ktpm := sess.TPCC(mode, d)
		fmt.Printf("TPC-C (%s): %.2f ktpm\n", mode, ktpm)
	case "video":
		r := sess.VideoN(mode, *fps, *fps*60)
		fmt.Printf("video %d FPS (%s): %d dropped / %d played (60 s)\n", *fps, mode, r.Dropped, r.Played)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	if wantObs {
		writeObs(sess, *trace, *metrics, *summary)
	}
}

// writeObs exports the session's last observability plane.
func writeObs(sess *svtsim.Session, tracePath, metricsPath string, summary int) {
	plane := sess.LastObs()
	if plane == nil {
		fmt.Fprintln(os.Stderr, "observability: no plane captured (workload did not run an instrumented machine)")
		os.Exit(1)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "observability:", err)
			os.Exit(1)
		}
		if err := plane.Tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "observability:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", plane.Tracer.Total(), tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "observability:", err)
			os.Exit(1)
		}
		werr := error(nil)
		if strings.HasSuffix(metricsPath, ".json") {
			werr = plane.Metrics.WriteJSON(f)
		} else {
			werr = plane.Metrics.WriteCSV(f)
		}
		if werr == nil {
			werr = f.Close()
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "observability:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: wrote %s\n", metricsPath)
	}
	if summary > 0 {
		if err := plane.Tracer.WriteSummary(os.Stdout, summary); err != nil {
			fmt.Fprintln(os.Stderr, "observability:", err)
			os.Exit(1)
		}
	}
}
