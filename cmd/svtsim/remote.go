package main

// The -submit passthrough: the same CLI flags, executed by a running
// svtsimd daemon instead of in-process. The flag set maps onto one
// server.Request, progress streams to stderr, result lines print to
// stdout, and -trace/-metrics fetch the daemon's rendered artifacts.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"svtsim/internal/obs"
	"svtsim/internal/server"
)

// remoteFlags is the subset of CLI state the passthrough consumes.
type remoteFlags struct {
	mode, workload, hostStr string
	port                    string
	n, fps, vms, shards     int
	dur                     time.Duration
	rate, slo               float64
	density                 bool
	storm, checkN           int
	stormSeed, checkSeed    int64
	lb                      int
	lbScen                  string
	lbSeed                  int64
	lbSLO                   float64
	faults                  string
	faultSeed               int64
	faultRate               float64
	trace, metrics          string
	replay, migrate         string
}

// remoteRequest maps the CLI flag set onto one server request.
func remoteRequest(f remoteFlags) (*server.Request, error) {
	if f.replay != "" || f.migrate != "" {
		return nil, fmt.Errorf("-replay and -migrate need local repro files; run them without -submit")
	}
	req := &server.Request{
		Topology:  f.hostStr,
		Port:      f.port,
		Shards:    f.shards,
		Faults:    f.faults,
		FaultSeed: f.faultSeed,
		FaultRate: f.faultRate,
		Trace:     f.trace != "" || f.metrics != "",
	}
	switch {
	case f.density:
		req.Kind = server.KindDensity
		req.VMs = f.vms
		req.SLOUs = f.slo
	case f.storm > 0:
		req.Kind = server.KindStorm
		req.VMs = f.vms
		req.Storms = f.storm
		req.Seed = f.stormSeed
	case f.lb > 0:
		if f.lbScen == "all" {
			return nil, fmt.Errorf("-lb-scenario all sweeps locally; submit one scenario per request")
		}
		req.Kind = server.KindLB
		req.VMs = f.lb
		req.Scenario = f.lbScen
		req.Seed = f.lbSeed
		req.SLOUs = f.lbSLO
	case f.checkN > 0:
		req.Kind = server.KindCheck
		req.Schedules = f.checkN
		req.Seed = f.checkSeed
	default:
		req.Kind = server.KindWorkload
		req.Workload = f.workload
		req.Modes = []string{f.mode}
		req.N = f.n
		req.DurMs = int(f.dur.Milliseconds())
		req.Rate = f.rate
		req.FPS = f.fps
	}
	return req, nil
}

// runRemote submits the request to the daemon at url and renders the
// outcome like a local run would. Returns the process exit code.
func runRemote(url string, f remoteFlags) int {
	req, err := remoteRequest(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	c := server.NewClient(url)
	ctx := context.Background()

	sub, err := c.Submit(ctx, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		return 1
	}
	if sub.Cached {
		fmt.Fprintf(os.Stderr, "%s: cache hit (digest %.12s...)\n", sub.ID, sub.Digest)
	} else {
		fmt.Fprintf(os.Stderr, "%s: %s (digest %.12s...)\n", sub.ID, sub.State, sub.Digest)
		err = c.Stream(ctx, sub.ID, func(ev server.ProgressEvent) {
			if ev.Stage != "" {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s\n", ev.Done, ev.Total, ev.Stage, ev.Detail)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			return 1
		}
	}

	st, err := c.Job(ctx, sub.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if st.State != server.StateDone {
		fmt.Fprintf(os.Stderr, "job %s: %s\n", st.State, st.Error)
		return 1
	}
	res, err := c.Result(ctx, sub.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, line := range res.Lines {
		fmt.Println(line)
	}

	if f.trace != "" {
		if err := fetchArtifact(ctx, c, sub.ID, obs.ArtifactTrace, f.trace); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return 1
		}
	}
	if f.metrics != "" {
		name := obs.ArtifactMetricsCSV
		if strings.HasSuffix(f.metrics, ".json") {
			name = obs.ArtifactMetricsJSON
		}
		if err := fetchArtifact(ctx, c, sub.ID, name, f.metrics); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			return 1
		}
	}
	return 0
}

func fetchArtifact(ctx context.Context, c *server.Client, id, name, path string) error {
	b, err := c.Artifact(ctx, id, name)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: wrote %d bytes to %s\n", name, len(b), path)
	return nil
}
