// Command svtbench regenerates the tables and figures of "Using SMT to
// Accelerate Nested Virtualization" (ISCA'19) on the simulated testbed.
//
// Usage:
//
//	svtbench -all            regenerate everything (full-length runs)
//	svtbench -all -quick     regenerate everything with shortened runs
//	svtbench -table 1        one table (1, 3 or 4)
//	svtbench -figure 7       one figure (6–10)
//	svtbench -micro channels the §6.1 communication-channel study
//	svtbench -profile        the §6.2/§6.3 exit-reason profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"svtsim"
)

func main() {
	var (
		all     = flag.Bool("all", false, "regenerate every table and figure")
		quick   = flag.Bool("quick", false, "shortened runs")
		table   = flag.Int("table", 0, "regenerate one table (1, 3, 4)")
		figure  = flag.Int("figure", 0, "regenerate one figure (6-10)")
		micro   = flag.String("micro", "", "micro study to run (channels)")
		profile = flag.Bool("profile", false, "exit-reason profiles (6.2/6.3)")
		root    = flag.String("root", ".", "repository root (for Table 3 line counts)")
	)
	flag.Parse()

	w := os.Stdout
	n := 2000
	if *quick {
		n = 400
	}
	ran := false
	if *all || *table == 1 {
		svtsim.ReportTable1(w, n)
		ran = true
	}
	if *all || *table == 3 {
		svtsim.ReportTable3(w, *root)
		ran = true
	}
	if *all || *table == 4 {
		svtsim.ReportTable4(w)
		ran = true
	}
	if *all || *figure == 6 {
		svtsim.ReportFigure6(w, n)
		ran = true
	}
	if *all || *figure == 7 {
		svtsim.ReportFigure7(w, *quick)
		ran = true
	}
	if *all || *figure == 8 {
		svtsim.ReportFigure8(w, *quick)
		ran = true
	}
	if *all || *figure == 9 {
		svtsim.ReportFigure9(w, *quick)
		ran = true
	}
	if *all || *figure == 10 {
		svtsim.ReportFigure10(w, *quick)
		ran = true
	}
	if *all || *micro == "channels" {
		svtsim.ReportChannels(w, *quick)
		ran = true
	}
	if *all || *profile {
		svtsim.ReportProfiles(w)
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected; try -all, -table N, -figure N, -micro channels or -profile")
		flag.Usage()
		os.Exit(2)
	}
}
