// Command svtbench regenerates the tables and figures of "Using SMT to
// Accelerate Nested Virtualization" (ISCA'19) on the simulated testbed.
//
// Usage:
//
//	svtbench -all            regenerate everything (full-length runs)
//	svtbench -all -quick     regenerate everything with shortened runs
//	svtbench -all -parallel=4  fan independent experiment cells out to 4 workers
//	svtbench -table 1        one table (1, 3 or 4)
//	svtbench -figure 7       one figure (6–10)
//	svtbench -micro channels the §6.1 communication-channel study
//	svtbench -profile        the §6.2/§6.3 exit-reason profiles
//	svtbench -bench -o BENCH_2026-08-06.json  record the perf-regression baseline
//	svtbench -trace trace.json  write a Perfetto timeline of a representative run
//
// Experiment cells are independent (each owns its engine and RNG
// streams), so -parallel=N changes wall-clock time only: the output is
// byte-identical for every N.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"svtsim"
	"svtsim/internal/parallel"
)

// section is one independently renderable chunk of -all output.
type section struct {
	name string
	run  func(io.Writer)
}

// sections assembles the selected report sections in presentation order.
func sections(all bool, table, figure int, micro string, profile bool, n int, quick bool, root string) []section {
	var secs []section
	add := func(sel bool, name string, run func(io.Writer)) {
		if sel {
			secs = append(secs, section{name: name, run: run})
		}
	}
	add(all || table == 1, "table1", func(w io.Writer) { svtsim.ReportTable1(w, n) })
	add(all || table == 3, "table3", func(w io.Writer) { svtsim.ReportTable3(w, root) })
	add(all || table == 4, "table4", func(w io.Writer) { svtsim.ReportTable4(w) })
	add(all || figure == 6, "figure6", func(w io.Writer) { svtsim.ReportFigure6(w, n) })
	add(all || figure == 7, "figure7", func(w io.Writer) { svtsim.ReportFigure7(w, quick) })
	add(all || figure == 8, "figure8", func(w io.Writer) { svtsim.ReportFigure8(w, quick) })
	add(all || figure == 9, "figure9", func(w io.Writer) { svtsim.ReportFigure9(w, quick) })
	add(all || figure == 10, "figure10", func(w io.Writer) { svtsim.ReportFigure10(w, quick) })
	add(all || micro == "channels", "channels", func(w io.Writer) { svtsim.ReportChannels(w, quick) })
	add(all || profile, "profiles", func(w io.Writer) { svtsim.ReportProfiles(w) })
	return secs
}

// renderAll renders every section concurrently into its own buffer on the
// worker pool, then writes the buffers in presentation order. Sections
// themselves fan their cells out on the same pool, so small sections do
// not serialize behind big ones.
func renderAll(w io.Writer, secs []section) {
	bufs := parallel.Map(len(secs), func(i int) []byte {
		var b bytes.Buffer
		secs[i].run(&b)
		return b.Bytes()
	})
	for _, b := range bufs {
		w.Write(b)
	}
}

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		quick    = flag.Bool("quick", false, "shortened runs")
		table    = flag.Int("table", 0, "regenerate one table (1, 3, 4)")
		figure   = flag.Int("figure", 0, "regenerate one figure (6-10)")
		micro    = flag.String("micro", "", "micro study to run (channels)")
		profile  = flag.Bool("profile", false, "exit-reason profiles (6.2/6.3)")
		root     = flag.String("root", ".", "repository root (for Table 3 line counts)")
		workers  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool width for independent experiment cells (1 = serial)")
		bench    = flag.Bool("bench", false, "run the perf-regression benchmark suite")
		benchOut = flag.String("o", "", "write -bench results as JSON to this file (default BENCH_<date>.json)")
		traceOut = flag.String("trace", "", "write a Perfetto timeline of a representative SW-SVt run to this file")
	)
	flag.Parse()

	parallel.SetWorkers(*workers)

	w := os.Stdout
	n := 2000
	if *quick {
		n = 400
	}

	if *traceOut != "" {
		if err := writeTraceArtifact(*traceOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*all && *table == 0 && *figure == 0 && *micro == "" && !*profile && !*bench {
			return
		}
	}

	if *bench {
		if err := runBench(w, *benchOut, *quick, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	secs := sections(*all, *table, *figure, *micro, *profile, n, *quick, *root)
	if len(secs) == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected; try -all, -table N, -figure N, -micro channels, -profile, -bench or -trace FILE")
		flag.Usage()
		os.Exit(2)
	}
	renderAll(w, secs)
}

// writeTraceArtifact runs one representative experiment — SW-SVt netperf
// TCP_RR, the richest event mix (nested exits, ring traffic, IRQs,
// virtio) — with the observability plane armed, and serializes the
// timeline as Chrome trace-event JSON. The run itself is byte-identical
// to an untraced one; only the artifact is extra.
func writeTraceArtifact(path string, quick bool) error {
	n := 500
	if quick {
		n = 100
	}
	sess, err := svtsim.NewSession(svtsim.WithObs(&svtsim.ObsOptions{}))
	if err != nil {
		return err
	}
	r := sess.NetLatency(svtsim.SWSVt, n)
	plane := sess.LastObs()
	if plane == nil {
		return fmt.Errorf("svtbench: trace run captured no observability plane")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := plane.Tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: netperf TCP_RR (sw-svt, n=%d, mean %.1f us): %d events -> %s\n",
		n, r.MeanUs, plane.Tracer.Total(), path)
	return nil
}
