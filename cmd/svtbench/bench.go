// The -bench mode: a fixed suite of engine microbenchmarks and
// experiment macrobenchmarks run through testing.Benchmark, recorded as
// one JSON document per invocation. Committed BENCH_<date>.json files
// form the repository's perf trajectory: compare ns/op, allocs/op,
// simulated events/sec and parallel speedup across commits to catch
// regressions on the simulator's hot path.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"svtsim"
	"svtsim/internal/exp"
	"svtsim/internal/hv"
	"svtsim/internal/parallel"
	"svtsim/internal/sim"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ParallelBaseline records the -all -quick fan-out measurement.
type ParallelBaseline struct {
	Workers    int     `json:"workers"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// ShardScalingPoint is one shard count's FleetReplay measurement. The
// digest is asserted equal to the single-heap run before the point is
// recorded, so every row describes the same simulation.
type ShardScalingPoint struct {
	Shards       int     `json:"shards"`
	Events       uint64  `json:"events"`
	WallMs       float64 `json:"wall_ms"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
	Efficiency   float64 `json:"efficiency"`
}

// BenchReport is the JSON document -bench emits.
type BenchReport struct {
	Date         string              `json:"date"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	Quick        bool                `json:"quick"`
	Engine       []BenchResult       `json:"engine"`
	Experiments  []BenchResult       `json:"experiments"`
	EventsPerSec float64             `json:"simulated_events_per_sec"`
	Parallel     ParallelBaseline    `json:"parallel"`
	ShardScaling []ShardScalingPoint `json:"shard_scaling"`
}

func toResult(name string, r testing.BenchmarkResult) BenchResult {
	out := BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Metrics = map[string]float64{}
		for k, v := range r.Extra {
			out.Metrics[k] = v
		}
	}
	return out
}

// engineSuite: the zero-alloc contract on the engine hot path, measured
// exactly like internal/sim's benchmarks.
func engineSuite() []BenchResult {
	var out []BenchResult

	out = append(out, toResult("EngineSchedule", testing.Benchmark(func(b *testing.B) {
		e := sim.New()
		fn := func() {}
		e.After(1, fn)
		e.Step()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(1, fn)
			e.Step()
		}
	})))

	out = append(out, toResult("EngineScheduleCancel", testing.Benchmark(func(b *testing.B) {
		e := sim.New()
		fn := func() {}
		e.Cancel(e.After(10, fn))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cancel(e.After(10, fn))
		}
	})))

	out = append(out, toResult("EngineDrain1k", testing.Benchmark(func(b *testing.B) {
		const k = 1024
		e := sim.New()
		fn := func() {}
		fill := func() {
			for j := 0; j < k; j++ {
				e.After(sim.Time(j*37%251), fn)
			}
		}
		fill()
		e.Drain(1 << 62)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill()
			e.Drain(1 << 62)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/event")
	})))

	return out
}

// experimentSuite: fixed macro cells whose wall-clock ns/op tracks
// whole-simulator speed (virtual-time results are pinned by tests, so
// only the wall clock can move).
func experimentSuite(quick bool) []BenchResult {
	n := 500
	dur := 50 * svtsim.Millisecond
	if quick {
		n = 200
		dur = 20 * svtsim.Millisecond
	}
	var out []BenchResult
	cells := []struct {
		name string
		run  func()
	}{
		{"CPUIDNestedBaseline", func() { svtsim.CPUIDNested(svtsim.Baseline, n) }},
		{"CPUIDNestedSWSVt", func() { svtsim.CPUIDNested(svtsim.SWSVt, n) }},
		{"CPUIDNestedHWSVt", func() { svtsim.CPUIDNested(svtsim.HWSVt, n) }},
		{"NetLatencyBaseline", func() { svtsim.NetLatency(svtsim.Baseline, n/4) }},
		{"DiskLatencySWSVt", func() { svtsim.DiskLatency(svtsim.SWSVt, false, n/4) }},
		{"MemcachedSWSVt", func() { svtsim.Memcached(svtsim.SWSVt, 8000, dur) }},
	}
	for _, c := range cells {
		c := c
		out = append(out, toResult(c.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.run()
			}
		})))
	}
	return out
}

// measureEventsPerSec runs the event-heavy netperf TCP_RR workload (every
// transaction crosses the NIC, virtio and LAPIC event paths) and reports
// how many engine events the simulator dispatches per wall-clock second.
func measureEventsPerSec(quick bool) float64 {
	n := 400
	if quick {
		n = 100
	}
	start := time.Now()
	_, events, _ := exp.NetLatencyEvents(hv.ModeSWSVt, n)
	elapsed := time.Since(start)
	return float64(events) / elapsed.Seconds()
}

// measureShardScaling runs the FleetReplay macro — every context of the
// paper's 2x8x2 testbed ticking, with cross-socket IPIs — at shard
// counts 1, 2, 4, 8 and reports wall-clock ns/event and simulated
// events/sec per count. Each run's digest must match the single-heap
// run (the sharded engine's merge is order-exact), so the rows measure
// pure engine throughput on an identical event stream. Each count is
// timed best-of-3 (best-of-1 under -quick) to damp scheduler noise;
// speedup is relative to shards=1 and efficiency is speedup/shards.
// Speedup above 1 needs real cores: on a single-CPU runner the windowed
// shards serialize and the barrier overhead shows up as a slowdown.
func measureShardScaling(quick bool) ([]ShardScalingPoint, error) {
	spec := exp.DefaultFleetReplaySpec()
	reps := 3
	if quick {
		spec.Dur = 5 * sim.Millisecond
		reps = 1
	}
	exp.FleetReplay(spec) // warm-up: page in code before timing
	var out []ShardScalingPoint
	var ref exp.FleetReplayResult
	for _, shards := range []int{1, 2, 4, 8} {
		s := spec
		s.Shards = shards
		var best time.Duration
		var res exp.FleetReplayResult
		for i := 0; i < reps; i++ {
			start := time.Now()
			res = exp.FleetReplay(s)
			if wall := time.Since(start); i == 0 || wall < best {
				best = wall
			}
		}
		if shards == 1 {
			ref = res
		} else if res.Digest != ref.Digest || res.Events != ref.Events {
			return nil, fmt.Errorf("svtbench: shard determinism violated:\n  %s\n  %s",
				res.FleetReplayLine(), ref.FleetReplayLine())
		}
		pt := ShardScalingPoint{
			Shards:       shards,
			Events:       res.Events,
			WallMs:       float64(best.Microseconds()) / 1e3,
			NsPerEvent:   float64(best.Nanoseconds()) / float64(res.Events),
			EventsPerSec: float64(res.Events) / best.Seconds(),
		}
		if shards == 1 {
			pt.Speedup, pt.Efficiency = 1, 1
		} else {
			pt.Speedup = out[0].WallMs / pt.WallMs
			pt.Efficiency = pt.Speedup / float64(shards)
		}
		out = append(out, pt)
	}
	return out, nil
}

// measureParallel times the -all -quick section pipeline serially and on
// the full pool: the committed speedup is the acceptance metric for the
// experiment fan-out.
func measureParallel(workers int) ParallelBaseline {
	secs := sections(true, 0, 0, "", false, 400, true, ".")
	timeRun := func(w int) time.Duration {
		parallel.SetWorkers(w)
		defer parallel.SetWorkers(workers)
		start := time.Now()
		renderAll(io.Discard, secs)
		return time.Since(start)
	}
	timeRun(1) // warm-up: page in code and cost tables before timing
	serial := timeRun(1)
	par := timeRun(workers)
	return ParallelBaseline{
		Workers:    workers,
		SerialMs:   float64(serial.Microseconds()) / 1e3,
		ParallelMs: float64(par.Microseconds()) / 1e3,
		Speedup:    float64(serial) / float64(par),
	}
}

// runBench runs the full suite and writes the JSON baseline.
func runBench(w io.Writer, outPath string, quick bool, workers int) error {
	date := time.Now().UTC().Format("2006-01-02")
	if outPath == "" {
		outPath = "BENCH_" + date + ".json"
	}
	rep := BenchReport{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	fmt.Fprintln(w, "engine microbenchmarks:")
	rep.Engine = engineSuite()
	for _, r := range rep.Engine {
		fmt.Fprintf(w, "  %-22s %12.1f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}

	fmt.Fprintln(w, "experiment macrobenchmarks:")
	rep.Experiments = experimentSuite(quick)
	for _, r := range rep.Experiments {
		fmt.Fprintf(w, "  %-22s %12.0f ns/op\n", r.Name, r.NsPerOp)
	}

	rep.EventsPerSec = measureEventsPerSec(quick)
	fmt.Fprintf(w, "simulated events/sec: %.0f\n", rep.EventsPerSec)

	rep.Parallel = measureParallel(workers)
	fmt.Fprintf(w, "parallel -all -quick: serial %.0f ms, %d workers %.0f ms, speedup %.2fx\n",
		rep.Parallel.SerialMs, rep.Parallel.Workers, rep.Parallel.ParallelMs, rep.Parallel.Speedup)

	fmt.Fprintln(w, "shard scaling (fleet replay, 2x8x2, digest-checked vs single heap):")
	scaling, err := measureShardScaling(quick)
	if err != nil {
		return err
	}
	rep.ShardScaling = scaling
	for _, pt := range rep.ShardScaling {
		fmt.Fprintf(w, "  shards=%d %10d events %9.1f ms %8.1f ns/event %12.0f events/sec speedup %.2fx efficiency %.2f\n",
			pt.Shards, pt.Events, pt.WallMs, pt.NsPerEvent, pt.EventsPerSec, pt.Speedup, pt.Efficiency)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline written to %s\n", outPath)
	return nil
}
