package svtsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeCPUIDLadder(t *testing.T) {
	l0 := CPUIDNative(100)
	l2 := CPUIDNested(Baseline, 100)
	hw := CPUIDNested(HWSVt, 100)
	if !(l0.PerOp < hw.PerOp && hw.PerOp < l2.PerOp) {
		t.Fatalf("ladder violated: %v %v %v", l0.PerOp, hw.PerOp, l2.PerOp)
	}
}

func TestFacadeMachineConstruction(t *testing.T) {
	for _, mode := range Modes {
		cfg := DefaultConfig(mode)
		io := WireIO(&cfg)
		m := NewNestedMachine(cfg)
		if m == nil || io == nil {
			t.Fatalf("mode %v: construction failed", mode)
		}
		m.Shutdown()
	}
}

func TestFacadeCostModel(t *testing.T) {
	c := BaselineCosts()
	if c.ExitLeg() <= 0 || c.EntryLeg() <= 0 {
		t.Fatal("cost model legs must be positive")
	}
}

func TestReportsRender(t *testing.T) {
	var b bytes.Buffer
	ReportTable4(&b)
	if !strings.Contains(b.String(), "Table 4") {
		t.Fatal("table 4 render")
	}
	b.Reset()
	ReportTable3(&b, ".")
	if !strings.Contains(b.String(), "KVM analogue") {
		t.Fatal("table 3 render")
	}
	b.Reset()
	ReportTable1(&b, 200)
	out := b.String()
	for _, want := range []string{"Table 1", "L0 handler", "10.40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 render missing %q", want)
		}
	}
	b.Reset()
	ReportFigure6(&b, 100)
	if !strings.Contains(b.String(), "HW SVt") {
		t.Fatal("figure 6 render")
	}
}

func TestChannelStudyFacade(t *testing.T) {
	pts := ChannelStudy(50, []Time{0})
	if len(pts) != 9 { // 3 policies x 3 placements
		t.Fatalf("points = %d, want 9", len(pts))
	}
}
