// Soft-realtime video playback: the paper's §6.3.3 experiment
// (Figure 10). A player in the nested VM decodes against vsync deadlines
// while streaming from the virtio disk; at high frame rates the timer and
// interrupt delivery overhead of nested virtualization decides which
// marginal frames drop.
package main

import (
	"flag"
	"fmt"

	"svtsim"
)

func main() {
	seconds := flag.Int("seconds", 300, "seconds of playback per run")
	flag.Parse()

	fmt.Printf("video playback, %d s per run, dropped frames:\n", *seconds)
	fmt.Printf("%6s %12s %12s %10s\n", "FPS", "baseline", "SW SVt", "ratio")
	for _, fps := range []int{24, 60, 120} {
		frames := fps * *seconds
		b := svtsim.VideoN(svtsim.Baseline, fps, frames)
		s := svtsim.VideoN(svtsim.SWSVt, fps, frames)
		ratio := "-"
		if b.Dropped > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(s.Dropped)/float64(b.Dropped))
		}
		fmt.Printf("%6d %12d %12d %10s\n", fps, b.Dropped, s.Dropped, ratio)
	}
	fmt.Println("\npaper (Figure 10): 0/0, 3/0, 40/0.65x")
}
