// Quickstart: build the three-level nested virtualization stack in each
// configuration, run the paper's cpuid micro-benchmark, and print the
// headline result — the Table 1 breakdown and the Figure 6 speedups.
package main

import (
	"fmt"
	"os"

	"svtsim"
)

func main() {
	const n = 1000

	fmt.Println("svtsim quickstart: nested cpuid under three system variants")
	fmt.Println()

	// The Figure 6 ladder: native, single-level, nested, and the two SVt
	// variants.
	native := svtsim.CPUIDNative(n)
	single := svtsim.CPUIDSingleLevel(n)
	fmt.Printf("  native (L0):        %v per cpuid\n", native.PerOp)
	fmt.Printf("  single level (L1):  %v per cpuid\n", single.PerOp)

	var base svtsim.CPUIDResult
	for _, mode := range svtsim.AllModes() {
		r := svtsim.CPUIDNested(mode, n)
		switch mode {
		case svtsim.Baseline:
			base = r
			fmt.Printf("  nested (L2):        %v per cpuid\n", r.PerOp)
		default:
			fmt.Printf("  nested + %-9s %v per cpuid (%.2fx speedup)\n",
				mode.String()+":", r.PerOp, float64(base.PerOp)/float64(r.PerOp))
		}
	}

	// Where does the nested baseline's time go? (Table 1.)
	svtsim.ReportTable1(os.Stdout, n)
}
