// Fault-injection sweep: how gracefully does the SW SVt prototype
// degrade when its communication substrate misbehaves? This arms the
// deterministic fault plane with increasing rates of lost mwait wakeups
// and dropped IPIs and reports the per-op latency next to the recovery
// machinery's counters: watchdog fires absorb isolated losses, and under
// sustained loss the per-VCPU breaker trips and routes reflections to
// the baseline trap/resume path until the channel heals.
//
// Every run is seed-deterministic: rerunning this program produces
// byte-identical output.
package main

import (
	"fmt"

	"svtsim"
)

func main() {
	rates := []float64{0, 0.01, 0.05, 0.10, 0.30, 0.60}

	fmt.Println("SW SVt under injected faults: nested cpuid, 400 iterations")
	fmt.Printf("%-6s %10s %8s %6s %10s %7s %7s %10s\n",
		"rate", "per-op", "refl", "wd", "fallbacks", "trips", "recov", "completed")
	// The rate sweep is an independent grid: fan the cells out to all
	// cores. Results come back in cell order, so the rendered table is
	// byte-identical to a serial sweep.
	cells := make([]svtsim.FaultCell, len(rates))
	for i, rate := range rates {
		var spec *svtsim.FaultSpec
		if rate > 0 {
			spec = &svtsim.FaultSpec{
				Seed: 42,
				Sites: []svtsim.FaultSiteConfig{
					{Site: svtsim.FaultSiteSVtWakeup, Rate: rate, Drop: true},
					{Site: svtsim.FaultSiteIPI, Rate: rate, Drop: true},
				},
			}
		}
		cells[i] = svtsim.FaultCell{Mode: svtsim.SWSVt, Spec: spec, N: 400}
	}
	for i, r := range svtsim.FaultSweepGrid(cells) {
		fmt.Printf("%-6.2f %10v %8d %6d %10d %7d %7d %10v\n",
			rates[i], r.PerOp, r.Reflections, r.WatchdogFires,
			r.Fallbacks+r.FallbackReflections, r.BreakerTrips,
			r.BreakerRecoveries, r.Completed)
	}

	// A burst profile: the channel is healthy, breaks hard for a stretch
	// (every wakeup lost), then heals — the breaker's natural habitat.
	fmt.Println("\nBurst: wakeups 51..70 all lost, then healthy again")
	spec := &svtsim.FaultSpec{
		Seed: 42,
		Sites: []svtsim.FaultSiteConfig{
			{Site: svtsim.FaultSiteSVtWakeup, Every: 1, After: 50, Limit: 20, Drop: true},
		},
	}
	r := svtsim.FaultSweep(svtsim.SWSVt, spec, 400)
	fmt.Printf("per-op %v: %d watchdog fires, breaker tripped %d×, recovered %d×,\n",
		r.PerOp, r.WatchdogFires, r.BreakerTrips, r.BreakerRecoveries)
	fmt.Printf("%d reflections fell back to trap/resume while open, %d after retry exhaustion\n",
		r.FallbackReflections, r.Fallbacks)
}
