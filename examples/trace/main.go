// Tracing a nested run: arm the observability plane, run the SW SVt
// reflection protocol under a nested cpuid workload, and export the
// timeline as Chrome trace-event JSON (load trace.json in
// https://ui.perfetto.dev or chrome://tracing). One track per hardware
// context makes the paper's core idea visible on screen: the guest
// hypervisor's SVt thread handling reflected exits on the SMT sibling
// while the main context stays in the nested guest.
//
// The plane only records — it never charges virtual time — so the
// reported per-op latency is byte-identical with tracing on or off.
package main

import (
	"fmt"
	"os"

	"svtsim"
)

func main() {
	sess, err := svtsim.NewSession(svtsim.WithObs(&svtsim.ObsOptions{}))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := sess.CPUIDNested(svtsim.SWSVt, 300)
	fmt.Printf("nested cpuid (sw-svt): %v per instruction\n", r.PerOp)

	plane := sess.LastObs()

	// The timeline: spans for VM exits, nested exits, reflections and
	// wakeups; instants for ring pushes/pops, IRQs and IPIs.
	f, err := os.Create("trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := plane.Tracer.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %d events to trace.json\n", plane.Tracer.Total())

	// Where did the virtual cycles go?
	fmt.Println()
	plane.Tracer.WriteSummary(os.Stdout, 10)

	// And the metrics registry, as CSV.
	fmt.Println()
	plane.Metrics.WriteCSV(os.Stdout)
}
