// Serve: simulation-as-a-service. Submit a density sweep and a
// migration storm to a svtsimd daemon, print the streamed progress and
// the per-mode result lines, then resubmit the storm to show the
// content-addressed cache answering instantly with byte-identical
// results.
//
// By default the example hosts the server in-process (no daemon
// needed); point -url at a running `svtsimd -listen ...` to drive an
// external one — the CI smoke test does exactly that.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"svtsim/internal/server"
)

func main() {
	url := flag.String("url", "", "base URL of a running svtsimd (empty = host one in-process)")
	topo := flag.String("host", "1x4x2", "host topology (sockets x cores x SMT)")
	vms := flag.Int("vms", 6, "max nested VMs to pack / storm over")
	flag.Parse()

	if *url == "" {
		srv := server.New(server.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		*url = ts.URL
		fmt.Printf("hosting svtsimd in-process at %s\n", *url)
	}
	c := server.NewClient(*url)
	ctx := context.Background()
	if err := c.WaitHealthy(ctx, 5*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	show := func(ev server.ProgressEvent) {
		if ev.Stage != "" {
			fmt.Printf("  [%d/%d] %s %s\n", ev.Done, ev.Total, ev.Stage, ev.Detail)
		}
	}

	fmt.Printf("\n=== density sweep (%s, up to %d VMs) ===\n", *topo, *vms)
	density := &server.Request{Kind: server.KindDensity, Topology: *topo, VMs: *vms}
	res, err := c.Run(ctx, density, show)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	for _, line := range res.Lines {
		fmt.Println(line)
	}

	fmt.Printf("\n=== migration storm (%s, %d VMs) ===\n", *topo, *vms)
	storm := &server.Request{Kind: server.KindStorm, Topology: *topo, VMs: *vms, Storms: 6}
	res, err = c.Run(ctx, storm, show)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	for _, line := range res.Lines {
		fmt.Println(line)
	}

	fmt.Println("\n=== resubmit the storm: content-addressed cache hit ===")
	start := time.Now()
	sub, err := c.Submit(ctx, &server.Request{Kind: server.KindStorm, Topology: *topo, VMs: *vms, Storms: 6})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("cached=%v in %v (digest %.16s...)\n", sub.Cached, time.Since(start).Round(time.Microsecond), sub.Digest)
	if !sub.Cached {
		fmt.Fprintln(os.Stderr, "serve: expected a cache hit on resubmission")
		os.Exit(1)
	}
	stats, err := c.CacheStats(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("cache: %d entries, %d bytes, %d hits / %d misses\n",
		stats.Entries, stats.Bytes, stats.Hits, stats.Misses)
}
