// The §6.1 communication-channel study: how should the SW SVt prototype
// wait for commands? This sweeps the three wait mechanisms (polling,
// monitor/mwait, mutex) across the three thread placements (SMT sibling,
// same-NUMA cross-core, cross-NUMA) and workload sizes, reproducing the
// paper's conclusion that SMT + mwait is the right compromise.
package main

import (
	"fmt"

	"svtsim"
)

func main() {
	workloads := []svtsim.Time{0, 5 * svtsim.Microsecond, 20 * svtsim.Microsecond}
	pts := svtsim.ChannelStudy(300, workloads)

	fmt.Println("SW SVt channel study: nested cpuid per-op latency")
	fmt.Printf("%-8s %-12s %14s %14s\n", "policy", "placement", "workload", "per-op")
	for _, p := range pts {
		fmt.Printf("%-8s %-12s %14v %14v\n", p.Policy, p.Placement, p.Workload, p.PerOp)
	}

	fmt.Println("\npaper (§6.1):")
	fmt.Println(" - polling offers very little acceleration (it steals sibling cycles)")
	fmt.Println(" - placing threads on different NUMA nodes costs up to 10x in wakeups")
	fmt.Println(" - SMT + mwait is the best compromise, and what the prototype uses")
}
