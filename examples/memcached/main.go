// Memcached under load: the paper's §6.3.1 experiment. An open-loop
// client generates Facebook-ETC traffic against a memcached server
// running in the nested VM; the baseline saturates (99th percentile blows
// through the 500 µs SLA) well before the SVt-accelerated system does.
package main

import (
	"flag"
	"fmt"

	"svtsim"
)

func main() {
	dur := flag.Duration("dur", 0, "per-point virtual duration (default 300ms)")
	flag.Parse()
	d := 300 * svtsim.Millisecond
	if *dur > 0 {
		d = svtsim.Time(dur.Nanoseconds())
	}

	const sla = 500.0 // µs, following the paper (IX's parameters)
	fmt.Println("memcached + ETC load sweep (99th percentile vs 500us SLA)")
	fmt.Printf("%10s | %22s | %22s\n", "load (q/s)", "baseline p99 (us)", "SW SVt p99 (us)")
	for _, rate := range []float64{4000, 8000, 12000, 16000, 20000} {
		b := svtsim.Memcached(svtsim.Baseline, rate, d)
		s := svtsim.Memcached(svtsim.SWSVt, rate, d)
		mark := func(p float64) string {
			if p > sla {
				return " (SLA VIOLATED)"
			}
			return ""
		}
		fmt.Printf("%10.0f | %10.0f%-12s | %10.0f%-12s\n",
			rate, b.P99Us, mark(b.P99Us), s.P99Us, mark(s.P99Us))
	}
	fmt.Println("\npaper: SVt sustains 2.20x the within-SLA throughput of the baseline")
}
