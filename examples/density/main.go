// Density: the fleet-consolidation experiment. Pack an increasing number
// of nested VMs onto a simulated multi-socket SMT host and watch what
// each acceleration mode buys at the fleet level: how many VMs fit
// before the worst per-VM p99 busts the SLO, and what the aggregate
// throughput looks like on the way there.
//
// This is also the Session API showcase: topology, parallelism and the
// rest of the campaign's configuration travel with the session value
// instead of process-global knobs, so two campaigns with different
// setups can run side by side.
package main

import (
	"flag"
	"fmt"
	"os"

	"svtsim"
)

func main() {
	topoStr := flag.String("host", "2x8x2", "host topology (sockets x cores x SMT)")
	vms := flag.Int("vms", 8, "max nested VMs to pack")
	slo := flag.Float64("slo", 500, "p99 SLO in microseconds")
	flag.Parse()

	topo, err := svtsim.ParseHostTopology(*topoStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "density:", err)
		os.Exit(1)
	}

	sess, err := svtsim.NewSession(
		svtsim.WithHostTopology(topo),
		svtsim.WithParallelism(4),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "density:", err)
		os.Exit(1)
	}

	fmt.Printf("svtsim density: packing up to %d nested VMs on %s (%d hardware contexts)\n\n",
		*vms, topo, topo.Contexts())

	// A single packing level, inspected VM by VM: the scheduler's
	// placement decisions are visible in each VM's context set, and the
	// SW-SVt gangs' placement class (SMT sibling vs cross-core) falls out
	// of what was free when the gang was admitted.
	for _, mode := range svtsim.AllModes() {
		pt := sess.Consolidation(mode, 4)
		fmt.Printf("%s, k=4:\n", mode)
		for _, vm := range pt.VMs {
			fmt.Printf("  vm%-2d %-9s ctxs=%v slowdown=%.2fx p99=%.1fus\n",
				vm.VM, vm.Workload, vm.Ctxs, vm.Slowdown, vm.P99Us)
		}
	}
	fmt.Println()

	// The full sweep: every packing level, every mode, plus the max
	// density meeting the SLO. Byte-identical at any parallelism.
	sess.ReportDensity(os.Stdout, *vms, *slo)
}
