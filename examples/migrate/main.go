// Live migration walkthrough: the snapshot layer and the gang-migration
// state machine, bottom-up.
//
// Act 1 captures a nested SW-SVt machine's full architectural state —
// registers, every VMCS, EPT tables, LAPICs, guest memory, disk,
// virtqueue shadows, SVt-thread protocol state — as a canonical
// snapshot, proves the capture→restore→capture round trip is
// digest-stable, and shows what copy-on-write clones cost.
//
// Act 2 runs the differential harness's migrate directive: a schedule is
// executed under every mode while its VM is live-migrated mid-run —
// including a migration forced past its attempt budget into an atomic
// rollback — and the guest-visible outcome must be invariant to all of
// it.
//
// Act 3 packs a fleet and batters it with a seeded migration storm,
// reporting per-mode tail latency next to the recovery counters.
//
// Every run is seed-deterministic: rerunning this program produces
// byte-identical output.
package main

import (
	"fmt"
	"os"

	"svtsim"
)

func main() {
	// --- Act 1: snapshots -------------------------------------------------
	fmt.Println("Act 1: canonical snapshot of a nested SW-SVt machine")
	cfg := svtsim.DefaultConfig(svtsim.SWSVt)
	io := svtsim.WireIO(&cfg)
	m := svtsim.NewNestedMachine(cfg)
	pattern := make([]byte, 512)
	for i := range pattern {
		pattern[i] = byte(3 * i)
	}
	m.InstallL2(io, false, true, func(env *svtsim.GuestEnv) {
		env.Blk.Write(64, pattern)
		env.Blk.Read(64, len(pattern))
	})
	m.Run()
	defer m.Shutdown()

	snap := svtsim.CaptureSnapshot(m, io)
	fmt.Printf("  captured %d sections, %d bytes, digest %#016x\n",
		len(snap.Sections), snap.Bytes(), snap.Digest())

	before, after, err := svtsim.SnapshotRoundTrip(m, io)
	if err != nil {
		fmt.Fprintln(os.Stderr, "round trip failed:", err)
		os.Exit(1)
	}
	fmt.Printf("  restore round trip: %#016x -> %#016x (stable: %v)\n", before, after, before == after)

	clone := snap.Clone()
	fmt.Printf("  COW clone: shares every word slab, incremental diff %d bytes\n", clone.DiffBytes(snap))
	clone.MutateWord("core/gpr", 0, 0xdead)
	fmt.Printf("  after mutating one register word: diff %d bytes, original digest intact: %v\n",
		clone.DiffBytes(snap), snap.Digest() == before)

	// --- Act 2: migration transparency ------------------------------------
	fmt.Println("\nAct 2: guest-visible outcome invariant under live migration")
	fmt.Println("  clean move after op 2, forced rollback after op 5 (fails=3):")
	if err := svtsim.CheckMigratedSchedule(os.Stdout, 7, []svtsim.MigratePoint{
		{After: 2, Fails: 0},
		{After: 5, Fails: 3},
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// --- Act 3: the storm --------------------------------------------------
	fmt.Println("\nAct 3: 8 VMs per mode under a 24-event migration storm (seed 42)")
	sess, err := svtsim.NewSession()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range sess.StormTable(svtsim.AllModes(), 8, 24, 42) {
		fmt.Println(" ", r.StatsLine())
	}
	fmt.Println("\nRollbacks are atomic: a gang that exhausts its attempts keeps its")
	fmt.Println("source placement and loses only time; a VM whose migrations keep")
	fmt.Println("failing trips its placement breaker and stops being asked to move.")
}
