// TPC-C in a nested VM: the paper's §6.3.2 experiment (Figure 9). The
// transaction mix runs against the virtio disk through the full nested
// I/O path; SVt's cheaper VM traps translate directly into transaction
// throughput.
package main

import (
	"flag"
	"fmt"

	"svtsim"
)

func main() {
	dur := flag.Duration("dur", 0, "virtual duration per run (default 2s)")
	flag.Parse()
	d := 2 * svtsim.Second
	if *dur > 0 {
		d = svtsim.Time(dur.Nanoseconds())
	}

	fmt.Println("TPC-C transaction throughput in a nested VM")
	base := svtsim.TPCC(svtsim.Baseline, d)
	fmt.Printf("  baseline: %6.2f ktpm\n", base)
	svt := svtsim.TPCC(svtsim.SWSVt, d)
	fmt.Printf("  SW SVt:   %6.2f ktpm  (%.2fx)\n", svt, svt/base)
	hw := svtsim.TPCC(svtsim.HWSVt, d)
	fmt.Printf("  HW SVt:   %6.2f ktpm  (%.2fx)\n", hw, hw/base)
	fmt.Println("\npaper: baseline 6.37 ktpm, SVt speedup 1.18x")
}
